//! # udc-telemetry — zero-dependency observability substrate
//!
//! The paper argues a user-defined cloud must remain *accountable*: §4
//! asks "how can users trust the cloud?" and answers with verification
//! loops that compare what the platform claims (bills, placements,
//! isolation) against what actually happened. This crate is the
//! "actually happened" side: a deterministic observability substrate
//! the whole control plane reports into, with three pillars:
//!
//! - [`metrics`] — a [`MetricsRegistry`](metrics::MetricsRegistry) of
//!   counters, gauges (with high-water marks), and log-bucketed
//!   histograms with bounded-error quantiles, keyed by metric name plus
//!   `(tenant, module)` [`Labels`];
//! - [`span`] — nested span tracing (`telemetry.span("sched.place")`)
//!   timestamped from the *simulated* clock, so traces are reproducible
//!   bit-for-bit across runs;
//! - [`recorder`] — a fixed-capacity flight recorder of structured
//!   [`Event`](recorder::Event)s (placements, conflict resolutions,
//!   cold starts, failures, autoscale actions) that survives to JSON
//!   export for offline analysis.
//!
//! The hub itself ([`Telemetry`]) is cheap to clone and share. A
//! *disabled* hub (the default) is a true no-op: every method returns
//! after one `Option` check, so instrumented hot paths (placement,
//! message delivery) pay near-zero overhead when observability is off —
//! the criterion benches in `udc-bench` pin this below 5%.
//!
//! Time never comes from the host: callers install a clock source
//! (usually `udc-hal`'s `SimClock`) via [`Telemetry::set_clock`]; until
//! then a logical tick counter stands in, keeping traces deterministic
//! even clock-less.

pub mod decision;
pub mod export;
pub mod instrument;
mod json;
pub mod metrics;
pub mod recorder;
pub mod span;

use std::sync::{Arc, Mutex};

pub use decision::{Decision, DecisionRecord, ReasonCode};
pub use export::Snapshot;
pub use instrument::{CounterHandle, GaugeHandle, HistogramHandle};
pub use metrics::{Histogram, HistogramSummary};
pub use recorder::{Event, EventKind, FieldValue};
pub use span::{Span, SpanRecord};

/// Simulated-time microseconds (mirrors `udc_hal::clock::Micros`
/// without depending on it; the dependency points the other way).
pub type Micros = u64;

/// A clock the hub reads for span and event timestamps.
pub type ClockSource = Arc<dyn Fn() -> Micros + Send + Sync>;

/// Causal trace context: carried explicitly along the request path
/// (submit → place → allocate → launch → actor/dist ops) so every
/// component's spans link into one DAG. Sim-clock based — there is no
/// wall-clock anywhere in a trace. `Copy` so threading it through call
/// chains costs nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceCtx {
    /// Trace the request belongs to (unique per hub; remapped on
    /// [`Telemetry::absorb`] so worker-hub traces never collide).
    pub trace_id: u64,
    /// Span id of the caller — children opened via
    /// [`Telemetry::span_in`] attach beneath it.
    pub span: u32,
}

/// The `(tenant, module)` dimensions every metric and event can carry.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    /// Owning tenant, when attributable.
    pub tenant: Option<String>,
    /// Module within the tenant's app, when attributable.
    pub module: Option<String>,
}

impl Labels {
    /// Platform-wide (unattributed) series.
    pub fn none() -> Self {
        Self::default()
    }

    /// Tenant-scoped series.
    pub fn tenant(tenant: impl Into<String>) -> Self {
        Self {
            tenant: Some(tenant.into()),
            module: None,
        }
    }

    /// Tenant- and module-scoped series.
    pub fn module(tenant: impl Into<String>, module: impl Into<String>) -> Self {
        Self {
            tenant: Some(tenant.into()),
            module: Some(module.into()),
        }
    }
}

struct State {
    clock: Option<ClockSource>,
    /// Logical fallback time: bumped per timestamped operation before a
    /// clock source is installed.
    ticks: Micros,
    metrics: metrics::MetricsRegistry,
    /// Pre-registered lock-free instrument cells; their staged deltas
    /// are flushed into `metrics` at every read/snapshot/absorb point.
    instruments: instrument::InstrumentTable,
    spans: span::SpanStore,
    recorder: recorder::FlightRecorder,
    decisions: decision::DecisionLog,
    /// Next trace id to mint; every id in this hub is below it, which
    /// is what lets `absorb` shift absorbed trace ids collision-free.
    next_trace: u64,
}

impl State {
    fn now(&mut self) -> Micros {
        match &self.clock {
            Some(clock) => clock(),
            None => {
                self.ticks += 1;
                self.ticks
            }
        }
    }

    /// Folds every instrument cell's pending data into the registry so
    /// reads and exports see one consistent, path-independent view.
    fn flush_instruments(&mut self) {
        let State {
            instruments,
            metrics,
            ..
        } = self;
        instruments.flush(metrics);
    }
}

/// The observability hub. Clones share state; the default hub is
/// disabled and all operations are no-ops.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<State>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Contents are behind a mutex and unbounded; show only the mode.
        f.write_str(if self.is_enabled() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

/// Default flight-recorder capacity (events retained).
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// Default decision-log capacity (records retained).
pub const DEFAULT_DECISION_CAPACITY: usize = 16384;

impl Telemetry {
    /// A disabled hub: every operation is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled hub with the default flight-recorder capacity.
    pub fn enabled() -> Self {
        Self::with_recorder_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// An enabled hub retaining at most `capacity` flight events.
    pub fn with_recorder_capacity(capacity: usize) -> Self {
        Self::with_capacities(capacity, DEFAULT_DECISION_CAPACITY)
    }

    /// An enabled hub with explicit ring capacities for the flight
    /// recorder and the decision log. Both rings evict oldest-first and
    /// count drops, so hub memory stays bounded no matter how many
    /// events flow through (see the 1M-event absorb test).
    pub fn with_capacities(recorder_capacity: usize, decision_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(State {
                clock: None,
                ticks: 0,
                metrics: metrics::MetricsRegistry::default(),
                instruments: instrument::InstrumentTable::default(),
                spans: span::SpanStore::default(),
                recorder: recorder::FlightRecorder::new(recorder_capacity),
                decisions: decision::DecisionLog::new(decision_capacity),
                next_trace: 0,
            }))),
        }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn state(&self) -> Option<std::sync::MutexGuard<'_, State>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().expect("telemetry poisoned"))
    }

    /// Installs the timestamp source (typically the simulated clock).
    pub fn set_clock(&self, clock: impl Fn() -> Micros + Send + Sync + 'static) {
        if let Some(mut s) = self.state() {
            s.clock = Some(Arc::new(clock));
        }
    }

    /// Adds `delta` to a counter.
    pub fn incr(&self, name: &str, labels: Labels, delta: u64) {
        if let Some(mut s) = self.state() {
            s.metrics.incr(name, labels, delta);
        }
    }

    /// Reads a counter back (0 when absent or disabled).
    pub fn counter(&self, name: &str, labels: &Labels) -> u64 {
        self.state()
            .map(|mut s| {
                s.flush_instruments();
                s.metrics.counter(name, labels)
            })
            .unwrap_or(0)
    }

    /// Registers (or re-resolves) a lock-free counter handle for
    /// `(name, labels)`. Resolve once, then [`CounterHandle::incr`] is
    /// a single atomic op — no lock, no string hashing. Handles from a
    /// disabled hub are inert. Staged increments fold into the same
    /// registry series the string-keyed [`Telemetry::incr`] writes, so
    /// the two paths export identically.
    pub fn counter_handle(&self, name: &str, labels: &Labels) -> CounterHandle {
        match self.state() {
            Some(mut s) => {
                instrument::CounterHandle::active(s.instruments.register_counter(name, labels))
            }
            None => CounterHandle::default(),
        }
    }

    /// Registers a lock-free gauge handle (see
    /// [`Telemetry::counter_handle`] for semantics).
    pub fn gauge_handle(&self, name: &str, labels: &Labels) -> GaugeHandle {
        match self.state() {
            Some(mut s) => {
                instrument::GaugeHandle::active(s.instruments.register_gauge(name, labels))
            }
            None => GaugeHandle::default(),
        }
    }

    /// Registers a lock-free histogram handle (see
    /// [`Telemetry::counter_handle`] for semantics).
    pub fn histogram_handle(&self, name: &str, labels: &Labels) -> HistogramHandle {
        match self.state() {
            Some(mut s) => {
                instrument::HistogramHandle::active(s.instruments.register_histogram(name, labels))
            }
            None => HistogramHandle::default(),
        }
    }

    /// Sets a gauge, tracking its high-water mark.
    pub fn gauge_set(&self, name: &str, labels: Labels, value: i64) {
        if let Some(mut s) = self.state() {
            s.metrics.gauge_set(name, labels, value);
        }
    }

    /// Reads a gauge as `(current, high_water)`.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Option<(i64, i64)> {
        self.state().and_then(|mut s| {
            s.flush_instruments();
            s.metrics.gauge(name, labels)
        })
    }

    /// Records one observation into a log-bucketed histogram.
    pub fn observe(&self, name: &str, labels: Labels, value: u64) {
        if let Some(mut s) = self.state() {
            s.metrics.observe(name, labels, value);
        }
    }

    /// Summarizes a histogram (count, min/max, p50/p95/p99).
    pub fn histogram(&self, name: &str, labels: &Labels) -> Option<HistogramSummary> {
        self.state().and_then(|mut s| {
            s.flush_instruments();
            s.metrics.histogram(name, labels).map(|h| h.summary())
        })
    }

    /// Opens a span; it closes when the guard drops (or via
    /// [`Span::exit`]). Nesting follows open-span order, forming a
    /// tree; the span inherits the trace of its enclosing open span.
    pub fn span(&self, name: &str) -> Span {
        match self.state() {
            Some(mut s) => {
                let at = s.now();
                let id = s.spans.begin(name, at);
                let trace = s.spans.trace_of(id);
                Span::active(self.clone(), id, trace)
            }
            None => Span::inert(),
        }
    }

    /// Mints a fresh trace and opens its root span. Call once per
    /// request (e.g. `Cloud::submit`); pass [`Span::ctx`] down the call
    /// chain so callee spans join the same trace.
    pub fn trace_root(&self, name: &str) -> Span {
        match self.state() {
            Some(mut s) => {
                let at = s.now();
                let trace = s.next_trace;
                s.next_trace += 1;
                let id = s.spans.begin_at(name, at, None, Some(trace));
                Span::active(self.clone(), id, Some(trace))
            }
            None => Span::inert(),
        }
    }

    /// Opens a span as an explicit child of `ctx` — the causal
    /// propagation primitive. Unlike [`Telemetry::span`], the parent is
    /// taken from the context rather than the open-span stack, so the
    /// link survives component boundaries.
    pub fn span_in(&self, ctx: &TraceCtx, name: &str) -> Span {
        match self.state() {
            Some(mut s) => {
                let at = s.now();
                let id = s
                    .spans
                    .begin_at(name, at, Some(ctx.span), Some(ctx.trace_id));
                Span::active(self.clone(), id, Some(ctx.trace_id))
            }
            None => Span::inert(),
        }
    }

    /// Convenience for call sites holding an `Option<TraceCtx>`:
    /// [`Telemetry::span_in`] when a context is present, plain
    /// [`Telemetry::span`] otherwise.
    pub fn span_opt(&self, ctx: Option<&TraceCtx>, name: &str) -> Span {
        match ctx {
            Some(c) => self.span_in(c, name),
            None => self.span(name),
        }
    }

    /// Appends a structured decision record (candidate considered,
    /// accept/reject, reason code) to the bounded decision log. Build
    /// the [`Decision`] behind an [`Telemetry::is_enabled`] check on
    /// hot paths — its `detail` string allocates.
    pub fn decide(&self, d: Decision<'_>) {
        if let Some(mut s) = self.state() {
            let at = s.now();
            s.decisions.record(d, at);
        }
    }

    /// Decision records so far (snapshot order). Mostly for tests; the
    /// JSON export carries the same data.
    pub fn decisions(&self) -> Vec<DecisionRecord> {
        self.state()
            .map(|s| s.decisions.records().cloned().collect())
            .unwrap_or_default()
    }

    pub(crate) fn end_span(&self, id: u32) {
        if let Some(mut s) = self.state() {
            let at = s.now();
            s.spans.end(id, at);
        }
    }

    /// Appends a structured event to the flight recorder.
    pub fn event(&self, kind: EventKind, labels: Labels, fields: &[(&str, FieldValue)]) {
        if let Some(mut s) = self.state() {
            let at = s.now();
            s.recorder.record(kind, labels, fields, at);
        }
    }

    /// Folds everything `other` recorded into this hub: counters add,
    /// gauges take `other`'s value (high-water marks max), histograms
    /// merge exactly, spans append with remapped ids, and events are
    /// re-sequenced in arrival order while keeping their simulated
    /// timestamps. A no-op when either hub is disabled or both share
    /// state.
    ///
    /// This is how the parallel experiment harness stays deterministic:
    /// each worker records into a private hub, and the driver absorbs
    /// them in a fixed order (trial order, not completion order), so
    /// the merged snapshot is identical at any thread count.
    pub fn absorb(&self, other: &Telemetry) {
        self.absorb_inner(other, false);
    }

    /// [`Telemetry::absorb`] followed by emptying the source hub: the
    /// merged series, spans, events and decisions are cleared from
    /// `other` so a subsequent absorb contributes only what was recorded
    /// *since*. This is the repeated-barrier-merge primitive: a parallel
    /// executor absorbing its shard hubs every round would double-count
    /// every counter with plain `absorb` (the source registry keeps its
    /// merged totals); draining makes round merges additive.
    ///
    /// The source's instrument handles stay registered and valid —
    /// counter/histogram cells drain at flush anyway, and a gauge cell's
    /// high-water is monotone, so re-flushing after a drain merges
    /// idempotently. The source must not have open spans (panics: an
    /// open span holds an index into the store being cleared). Like
    /// `absorb`, a no-op when either hub is disabled, so nothing is
    /// drained unless it was actually merged.
    pub fn absorb_draining(&self, other: &Telemetry) {
        self.absorb_inner(other, true);
    }

    fn absorb_inner(&self, other: &Telemetry, drain: bool) {
        let (Some(dst), Some(src)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(dst, src) {
            return;
        }
        let mut d = dst.lock().expect("telemetry poisoned");
        let mut s = src.lock().expect("telemetry poisoned");
        // Both sides settle staged instrument deltas first, so the
        // merge sees exactly what the string-keyed path would hold.
        d.flush_instruments();
        s.flush_instruments();
        d.ticks = d.ticks.max(s.ticks);
        d.metrics.merge(&s.metrics);
        // Shift absorbed trace ids past everything this hub has minted
        // so worker-hub traces stay distinct after the merge.
        let trace_offset = d.next_trace;
        d.spans.absorb(s.spans.records(), trace_offset);
        d.recorder.absorb(&s.recorder);
        d.decisions.absorb(&s.decisions, trace_offset);
        d.next_trace += s.next_trace;
        if drain {
            s.metrics.clear();
            s.spans.drain();
            s.recorder.drain();
            s.decisions.drain();
        }
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.state()
            .map(|mut s| {
                s.flush_instruments();
                Snapshot::capture(&s)
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_inert() {
        let tel = Telemetry::disabled();
        tel.incr("x", Labels::none(), 3);
        tel.observe("h", Labels::none(), 10);
        tel.gauge_set("g", Labels::none(), 5);
        let span = tel.span("nothing");
        drop(span);
        tel.event(EventKind::Failure, Labels::none(), &[]);
        assert_eq!(tel.counter("x", &Labels::none()), 0);
        assert!(tel.histogram("h", &Labels::none()).is_none());
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty() && snap.spans.is_empty() && snap.events.is_empty());
    }

    #[test]
    fn counters_are_label_scoped() {
        let tel = Telemetry::enabled();
        tel.incr("runs", Labels::tenant("acme"), 2);
        tel.incr("runs", Labels::tenant("globex"), 5);
        tel.incr("runs", Labels::tenant("acme"), 1);
        assert_eq!(tel.counter("runs", &Labels::tenant("acme")), 3);
        assert_eq!(tel.counter("runs", &Labels::tenant("globex")), 5);
        assert_eq!(tel.counter("runs", &Labels::none()), 0);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let tel = Telemetry::enabled();
        let l = Labels::none();
        tel.gauge_set("depth", l.clone(), 4);
        tel.gauge_set("depth", l.clone(), 9);
        tel.gauge_set("depth", l.clone(), 2);
        assert_eq!(tel.gauge("depth", &l), Some((2, 9)));
    }

    #[test]
    fn absorb_merges_every_pillar() {
        let hub = Telemetry::enabled();
        hub.incr("placements", Labels::none(), 2);
        hub.gauge_set("depth", Labels::none(), 4);
        hub.observe("latency", Labels::none(), 10);
        hub.event(EventKind::Placement, Labels::none(), &[]);

        let worker = Telemetry::enabled();
        worker.set_clock(|| 777);
        worker.incr("placements", Labels::none(), 3);
        worker.incr("migrations", Labels::tenant("acme"), 1);
        worker.gauge_set("depth", Labels::none(), 9);
        worker.gauge_set("depth", Labels::none(), 1);
        worker.observe("latency", Labels::none(), 1000);
        worker.span("trial").exit();
        worker.event(EventKind::Measurement, Labels::none(), &[]);

        hub.absorb(&worker);

        assert_eq!(hub.counter("placements", &Labels::none()), 5);
        assert_eq!(hub.counter("migrations", &Labels::tenant("acme")), 1);
        // Gauge takes the incoming value; high-water folds with max.
        assert_eq!(hub.gauge("depth", &Labels::none()), Some((1, 9)));
        let h = hub.histogram("latency", &Labels::none()).unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 10, 1000));

        let snap = hub.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].start_us, 777, "span keeps its own clock");
        assert_eq!(snap.events.len(), 2);
        // Events re-sequence under the absorbing hub's counter while
        // keeping their original timestamps.
        assert_eq!(snap.events[1].seq, 1);
        assert_eq!(snap.events[1].at_us, 777);
        assert_eq!(snap.events[1].kind, EventKind::Measurement);

        // Worker is untouched.
        assert_eq!(worker.counter("placements", &Labels::none()), 3);
    }

    #[test]
    fn absorb_is_exact_for_histogram_quantiles() {
        // Recording split across two hubs then absorbed must summarize
        // identically to recording everything into one hub.
        let whole = Telemetry::enabled();
        let left = Telemetry::enabled();
        let right = Telemetry::enabled();
        for v in 1..=1000u64 {
            whole.observe("lat", Labels::none(), v);
            let part = if v % 2 == 0 { &left } else { &right };
            part.observe("lat", Labels::none(), v);
        }
        let merged = Telemetry::enabled();
        merged.absorb(&left);
        merged.absorb(&right);
        assert_eq!(
            merged.histogram("lat", &Labels::none()),
            whole.histogram("lat", &Labels::none())
        );
    }

    #[test]
    fn absorb_draining_makes_round_merges_additive() {
        // The parallel-executor barrier shape: shard hubs drained into
        // the main hub every round, instrument handles staying live.
        let main = Telemetry::enabled();
        let shard = Telemetry::enabled();
        let ops = shard.counter_handle("par.executed", &Labels::none());
        let depth = shard.gauge_handle("par.depth", &Labels::none());
        let lat = shard.histogram_handle("par.latency", &Labels::none());

        ops.incr(5);
        depth.set(9);
        depth.set(2);
        lat.observe(10);
        shard.span("round").exit();
        main.absorb_draining(&shard);
        assert_eq!(main.counter("par.executed", &Labels::none()), 5);
        assert_eq!(main.gauge("par.depth", &Labels::none()), Some((2, 9)));
        assert_eq!(main.snapshot().spans.len(), 1);
        // The shard hub is empty again…
        assert_eq!(shard.counter("par.executed", &Labels::none()), 0);
        assert!(shard.snapshot().spans.is_empty());

        // …so a second round through the SAME handles contributes only
        // its own delta — plain absorb would have re-added round one.
        ops.incr(3);
        depth.set(5);
        lat.observe(30);
        main.absorb_draining(&shard);
        assert_eq!(main.counter("par.executed", &Labels::none()), 8);
        // Gauge takes the fresh value; the high-water cell is monotone
        // across drains, so round one's peak survives.
        assert_eq!(main.gauge("par.depth", &Labels::none()), Some((5, 9)));
        let h = main.histogram("par.latency", &Labels::none()).unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 10, 30));
        assert_eq!(
            main.snapshot().spans.len(),
            1,
            "spans drained, not re-merged"
        );

        // An empty drain is a no-op.
        main.absorb_draining(&shard);
        assert_eq!(main.counter("par.executed", &Labels::none()), 8);
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn absorb_draining_rejects_open_source_spans() {
        let main = Telemetry::enabled();
        let shard = Telemetry::enabled();
        // Forget the guard: its Drop would otherwise re-panic on the
        // poisoned hub while the expected panic unwinds.
        std::mem::forget(shard.span("never.closed"));
        main.absorb_draining(&shard);
    }

    #[test]
    fn absorb_draining_noops_when_either_hub_is_disabled() {
        let src = Telemetry::enabled();
        src.incr("x", Labels::none(), 4);
        Telemetry::disabled().absorb_draining(&src);
        assert_eq!(
            src.counter("x", &Labels::none()),
            4,
            "nothing merged, so nothing drained"
        );
        let dst = Telemetry::enabled();
        dst.absorb_draining(&Telemetry::disabled());
        assert_eq!(dst.counter("x", &Labels::none()), 0);
    }

    #[test]
    fn absorb_noops_on_disabled_or_shared_hubs() {
        let hub = Telemetry::enabled();
        hub.incr("x", Labels::none(), 1);
        hub.absorb(&Telemetry::disabled());
        let alias = hub.clone();
        hub.absorb(&alias); // shared state: must not double or deadlock
        assert_eq!(hub.counter("x", &Labels::none()), 1);
        let disabled = Telemetry::disabled();
        disabled.absorb(&hub);
        assert!(!disabled.is_enabled());
    }

    #[test]
    fn absorb_keeps_worker_traces_distinct() {
        // Two workers each mint trace 0 on their private hub; after the
        // driver absorbs them in order, the merged store must hold two
        // distinct, internally-connected traces.
        let hub = Telemetry::enabled();
        let own = hub.trace_root("driver.submit");
        own.exit();

        for _ in 0..2 {
            let worker = Telemetry::enabled();
            let root = worker.trace_root("worker.submit");
            let ctx = root.ctx().unwrap();
            worker.span_in(&ctx, "worker.place").exit();
            worker.decide(Decision {
                ctx: Some(ctx),
                stage: "sched.place_task",
                module: "m0",
                candidate: "dev0",
                accepted: true,
                reason: ReasonCode::Accepted,
                score: Some(10),
                detail: String::new(),
            });
            root.exit();
            hub.absorb(&worker);
        }

        let snap = hub.snapshot();
        let mut traces: Vec<u64> = snap.spans.iter().filter_map(|s| s.trace).collect();
        traces.sort_unstable();
        traces.dedup();
        assert_eq!(traces.len(), 3, "driver trace + one per worker");
        // Parent links stay inside each trace.
        for s in &snap.spans {
            if let Some(p) = s.parent {
                let parent = snap.spans.iter().find(|r| r.id == p).unwrap();
                assert_eq!(parent.trace, s.trace, "parent stays in the same trace");
            }
        }
        // Decisions remapped alongside their spans.
        assert_eq!(snap.decisions.len(), 2);
        let d_traces: Vec<_> = snap.decisions.iter().map(|d| d.trace.unwrap()).collect();
        assert_ne!(d_traces[0], d_traces[1]);
        for d in &snap.decisions {
            assert!(
                snap.spans.iter().any(|s| s.trace == d.trace),
                "every decision's trace has spans"
            );
        }
    }

    #[test]
    fn memory_stays_bounded_under_million_event_absorb_loop() {
        // Flight-recorder unbounded-growth edge: absorb 1M events (and
        // decisions) through bounded rings and assert retention never
        // exceeds the configured capacities, with every eviction
        // counted rather than silently lost.
        const RING: usize = 512;
        const BATCH: usize = 1000;
        const ROUNDS: usize = 1000; // 1_000 * 1_000 = 1M events
        let hub = Telemetry::with_capacities(RING, RING);
        for _ in 0..ROUNDS {
            let worker = Telemetry::with_capacities(RING, RING);
            for i in 0..BATCH {
                worker.event(
                    EventKind::Measurement,
                    Labels::none(),
                    &[("i", FieldValue::from(i as u64))],
                );
                worker.decide(Decision {
                    ctx: None,
                    stage: "s",
                    module: "m",
                    candidate: "c",
                    accepted: false,
                    reason: ReasonCode::Capacity,
                    score: None,
                    detail: String::new(),
                });
            }
            hub.absorb(&worker);
        }
        let snap = hub.snapshot();
        assert!(snap.events.len() <= RING, "event ring stayed bounded");
        assert!(snap.decisions.len() <= RING, "decision ring stayed bounded");
        let total = (BATCH * ROUNDS) as u64;
        assert_eq!(snap.dropped_events + snap.events.len() as u64, total);
        assert_eq!(snap.dropped_decisions + snap.decisions.len() as u64, total);
    }

    #[test]
    fn instrument_handles_fold_into_registry() {
        let tel = Telemetry::enabled();
        let c = tel.counter_handle("actor.delivered", &Labels::none());
        let g = tel.gauge_handle("depth", &Labels::none());
        let h = tel.histogram_handle("lat", &Labels::none());
        c.incr(2);
        c.incr(3);
        g.set(7);
        g.set(4);
        h.observe(10);
        h.observe(1000);
        assert_eq!(tel.counter("actor.delivered", &Labels::none()), 5);
        assert_eq!(tel.gauge("depth", &Labels::none()), Some((4, 7)));
        let s = tel.histogram("lat", &Labels::none()).unwrap();
        assert_eq!((s.count, s.min, s.max), (2, 10, 1000));
        // Further use after a flush keeps accumulating.
        c.incr(1);
        g.set(9);
        h.observe(5);
        assert_eq!(tel.counter("actor.delivered", &Labels::none()), 6);
        assert_eq!(tel.gauge("depth", &Labels::none()), Some((9, 9)));
        let s = tel.histogram("lat", &Labels::none()).unwrap();
        assert_eq!((s.count, s.min, s.max), (3, 5, 1000));
    }

    #[test]
    fn handle_and_string_paths_export_identically() {
        // The same operation sequence recorded via handles and via the
        // string-keyed API must produce byte-identical JSON exports.
        let by_string = Telemetry::enabled();
        by_string.incr("actor.delivered", Labels::none(), 3);
        by_string.gauge_set("actor.mailbox_depth", Labels::none(), 2);
        by_string.gauge_set("actor.mailbox_depth", Labels::none(), 1);
        by_string.observe("actor.latency", Labels::tenant("acme"), 42);
        by_string.observe("actor.latency", Labels::tenant("acme"), 7);

        let by_handle = Telemetry::enabled();
        let c = by_handle.counter_handle("actor.delivered", &Labels::none());
        let g = by_handle.gauge_handle("actor.mailbox_depth", &Labels::none());
        let h = by_handle.histogram_handle("actor.latency", &Labels::tenant("acme"));
        c.incr(1);
        c.incr(1);
        c.incr(1);
        g.set(2);
        g.set(1);
        h.observe(42);
        h.observe(7);
        // Handles that were registered but never used must not
        // materialize a series.
        let _unused = by_handle.counter_handle("actor.never", &Labels::none());
        let _unused_g = by_handle.gauge_handle("actor.never_g", &Labels::none());
        let _unused_h = by_handle.histogram_handle("actor.never_h", &Labels::none());

        assert_eq!(
            by_handle.snapshot().to_json(),
            by_string.snapshot().to_json()
        );
    }

    #[test]
    fn handles_on_disabled_hub_are_inert() {
        let tel = Telemetry::disabled();
        let c = tel.counter_handle("x", &Labels::none());
        let g = tel.gauge_handle("g", &Labels::none());
        let h = tel.histogram_handle("h", &Labels::none());
        assert!(!c.is_active() && !g.is_active() && !h.is_active());
        c.incr(5);
        g.set(1);
        h.observe(9);
        assert!(tel.snapshot().counters.is_empty());
    }

    #[test]
    fn duplicate_registration_shares_one_cell() {
        let tel = Telemetry::enabled();
        let a = tel.counter_handle("hits", &Labels::none());
        let b = tel.counter_handle("hits", &Labels::none());
        a.incr(1);
        b.incr(2);
        assert_eq!(tel.counter("hits", &Labels::none()), 3);
        // Handle staging composes with the string-keyed path too.
        tel.incr("hits", Labels::none(), 10);
        a.incr(1);
        assert_eq!(tel.counter("hits", &Labels::none()), 14);
    }

    #[test]
    fn absorb_flushes_staged_instrument_deltas() {
        let hub = Telemetry::enabled();
        let hc = hub.counter_handle("msgs", &Labels::none());
        hc.incr(1);
        let worker = Telemetry::enabled();
        let wc = worker.counter_handle("msgs", &Labels::none());
        let wg = worker.gauge_handle("depth", &Labels::none());
        wc.incr(4);
        wg.set(6);
        hub.absorb(&worker);
        assert_eq!(hub.counter("msgs", &Labels::none()), 5);
        assert_eq!(hub.gauge("depth", &Labels::none()), Some((6, 6)));
    }

    #[test]
    fn clock_source_timestamps_spans() {
        let tel = Telemetry::enabled();
        let t = Arc::new(std::sync::atomic::AtomicU64::new(100));
        let tc = Arc::clone(&t);
        tel.set_clock(move || tc.load(std::sync::atomic::Ordering::Relaxed));
        let span = tel.span("work");
        t.store(250, std::sync::atomic::Ordering::Relaxed);
        span.exit();
        let snap = tel.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].start_us, 100);
        assert_eq!(snap.spans[0].end_us, Some(250));
    }
}
