//! # udc-telemetry — zero-dependency observability substrate
//!
//! The paper argues a user-defined cloud must remain *accountable*: §4
//! asks "how can users trust the cloud?" and answers with verification
//! loops that compare what the platform claims (bills, placements,
//! isolation) against what actually happened. This crate is the
//! "actually happened" side: a deterministic observability substrate
//! the whole control plane reports into, with three pillars:
//!
//! - [`metrics`] — a [`MetricsRegistry`](metrics::MetricsRegistry) of
//!   counters, gauges (with high-water marks), and log-bucketed
//!   histograms with bounded-error quantiles, keyed by metric name plus
//!   `(tenant, module)` [`Labels`];
//! - [`span`] — nested span tracing (`telemetry.span("sched.place")`)
//!   timestamped from the *simulated* clock, so traces are reproducible
//!   bit-for-bit across runs;
//! - [`recorder`] — a fixed-capacity flight recorder of structured
//!   [`Event`](recorder::Event)s (placements, conflict resolutions,
//!   cold starts, failures, autoscale actions) that survives to JSON
//!   export for offline analysis.
//!
//! The hub itself ([`Telemetry`]) is cheap to clone and share. A
//! *disabled* hub (the default) is a true no-op: every method returns
//! after one `Option` check, so instrumented hot paths (placement,
//! message delivery) pay near-zero overhead when observability is off —
//! the criterion benches in `udc-bench` pin this below 5%.
//!
//! Time never comes from the host: callers install a clock source
//! (usually `udc-hal`'s `SimClock`) via [`Telemetry::set_clock`]; until
//! then a logical tick counter stands in, keeping traces deterministic
//! even clock-less.

pub mod export;
mod json;
pub mod metrics;
pub mod recorder;
pub mod span;

use std::sync::{Arc, Mutex};

pub use export::Snapshot;
pub use metrics::{Histogram, HistogramSummary};
pub use recorder::{Event, EventKind, FieldValue};
pub use span::{Span, SpanRecord};

/// Simulated-time microseconds (mirrors `udc_hal::clock::Micros`
/// without depending on it; the dependency points the other way).
pub type Micros = u64;

/// A clock the hub reads for span and event timestamps.
pub type ClockSource = Arc<dyn Fn() -> Micros + Send + Sync>;

/// The `(tenant, module)` dimensions every metric and event can carry.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    /// Owning tenant, when attributable.
    pub tenant: Option<String>,
    /// Module within the tenant's app, when attributable.
    pub module: Option<String>,
}

impl Labels {
    /// Platform-wide (unattributed) series.
    pub fn none() -> Self {
        Self::default()
    }

    /// Tenant-scoped series.
    pub fn tenant(tenant: impl Into<String>) -> Self {
        Self {
            tenant: Some(tenant.into()),
            module: None,
        }
    }

    /// Tenant- and module-scoped series.
    pub fn module(tenant: impl Into<String>, module: impl Into<String>) -> Self {
        Self {
            tenant: Some(tenant.into()),
            module: Some(module.into()),
        }
    }
}

struct State {
    clock: Option<ClockSource>,
    /// Logical fallback time: bumped per timestamped operation before a
    /// clock source is installed.
    ticks: Micros,
    metrics: metrics::MetricsRegistry,
    spans: span::SpanStore,
    recorder: recorder::FlightRecorder,
}

impl State {
    fn now(&mut self) -> Micros {
        match &self.clock {
            Some(clock) => clock(),
            None => {
                self.ticks += 1;
                self.ticks
            }
        }
    }
}

/// The observability hub. Clones share state; the default hub is
/// disabled and all operations are no-ops.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<State>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Contents are behind a mutex and unbounded; show only the mode.
        f.write_str(if self.is_enabled() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

/// Default flight-recorder capacity (events retained).
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

impl Telemetry {
    /// A disabled hub: every operation is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled hub with the default flight-recorder capacity.
    pub fn enabled() -> Self {
        Self::with_recorder_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// An enabled hub retaining at most `capacity` flight events.
    pub fn with_recorder_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(State {
                clock: None,
                ticks: 0,
                metrics: metrics::MetricsRegistry::default(),
                spans: span::SpanStore::default(),
                recorder: recorder::FlightRecorder::new(capacity),
            }))),
        }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn state(&self) -> Option<std::sync::MutexGuard<'_, State>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().expect("telemetry poisoned"))
    }

    /// Installs the timestamp source (typically the simulated clock).
    pub fn set_clock(&self, clock: impl Fn() -> Micros + Send + Sync + 'static) {
        if let Some(mut s) = self.state() {
            s.clock = Some(Arc::new(clock));
        }
    }

    /// Adds `delta` to a counter.
    pub fn incr(&self, name: &str, labels: Labels, delta: u64) {
        if let Some(mut s) = self.state() {
            s.metrics.incr(name, labels, delta);
        }
    }

    /// Reads a counter back (0 when absent or disabled).
    pub fn counter(&self, name: &str, labels: &Labels) -> u64 {
        self.state()
            .map(|s| s.metrics.counter(name, labels))
            .unwrap_or(0)
    }

    /// Sets a gauge, tracking its high-water mark.
    pub fn gauge_set(&self, name: &str, labels: Labels, value: i64) {
        if let Some(mut s) = self.state() {
            s.metrics.gauge_set(name, labels, value);
        }
    }

    /// Reads a gauge as `(current, high_water)`.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Option<(i64, i64)> {
        self.state().and_then(|s| s.metrics.gauge(name, labels))
    }

    /// Records one observation into a log-bucketed histogram.
    pub fn observe(&self, name: &str, labels: Labels, value: u64) {
        if let Some(mut s) = self.state() {
            s.metrics.observe(name, labels, value);
        }
    }

    /// Summarizes a histogram (count, min/max, p50/p95/p99).
    pub fn histogram(&self, name: &str, labels: &Labels) -> Option<HistogramSummary> {
        self.state()
            .and_then(|s| s.metrics.histogram(name, labels).map(|h| h.summary()))
    }

    /// Opens a span; it closes when the guard drops (or via
    /// [`Span::exit`]). Nesting follows open-span order, forming a tree.
    pub fn span(&self, name: &str) -> Span {
        match self.state() {
            Some(mut s) => {
                let at = s.now();
                let id = s.spans.begin(name, at);
                Span::active(self.clone(), id)
            }
            None => Span::inert(),
        }
    }

    pub(crate) fn end_span(&self, id: u32) {
        if let Some(mut s) = self.state() {
            let at = s.now();
            s.spans.end(id, at);
        }
    }

    /// Appends a structured event to the flight recorder.
    pub fn event(&self, kind: EventKind, labels: Labels, fields: &[(&str, FieldValue)]) {
        if let Some(mut s) = self.state() {
            let at = s.now();
            s.recorder.record(kind, labels, fields, at);
        }
    }

    /// Folds everything `other` recorded into this hub: counters add,
    /// gauges take `other`'s value (high-water marks max), histograms
    /// merge exactly, spans append with remapped ids, and events are
    /// re-sequenced in arrival order while keeping their simulated
    /// timestamps. A no-op when either hub is disabled or both share
    /// state.
    ///
    /// This is how the parallel experiment harness stays deterministic:
    /// each worker records into a private hub, and the driver absorbs
    /// them in a fixed order (trial order, not completion order), so
    /// the merged snapshot is identical at any thread count.
    pub fn absorb(&self, other: &Telemetry) {
        let (Some(dst), Some(src)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(dst, src) {
            return;
        }
        let mut d = dst.lock().expect("telemetry poisoned");
        let s = src.lock().expect("telemetry poisoned");
        d.ticks = d.ticks.max(s.ticks);
        d.metrics.merge(&s.metrics);
        d.spans.absorb(s.spans.records());
        d.recorder.absorb(&s.recorder);
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        self.state()
            .map(|s| Snapshot::capture(&s))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_inert() {
        let tel = Telemetry::disabled();
        tel.incr("x", Labels::none(), 3);
        tel.observe("h", Labels::none(), 10);
        tel.gauge_set("g", Labels::none(), 5);
        let span = tel.span("nothing");
        drop(span);
        tel.event(EventKind::Failure, Labels::none(), &[]);
        assert_eq!(tel.counter("x", &Labels::none()), 0);
        assert!(tel.histogram("h", &Labels::none()).is_none());
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty() && snap.spans.is_empty() && snap.events.is_empty());
    }

    #[test]
    fn counters_are_label_scoped() {
        let tel = Telemetry::enabled();
        tel.incr("runs", Labels::tenant("acme"), 2);
        tel.incr("runs", Labels::tenant("globex"), 5);
        tel.incr("runs", Labels::tenant("acme"), 1);
        assert_eq!(tel.counter("runs", &Labels::tenant("acme")), 3);
        assert_eq!(tel.counter("runs", &Labels::tenant("globex")), 5);
        assert_eq!(tel.counter("runs", &Labels::none()), 0);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let tel = Telemetry::enabled();
        let l = Labels::none();
        tel.gauge_set("depth", l.clone(), 4);
        tel.gauge_set("depth", l.clone(), 9);
        tel.gauge_set("depth", l.clone(), 2);
        assert_eq!(tel.gauge("depth", &l), Some((2, 9)));
    }

    #[test]
    fn absorb_merges_every_pillar() {
        let hub = Telemetry::enabled();
        hub.incr("placements", Labels::none(), 2);
        hub.gauge_set("depth", Labels::none(), 4);
        hub.observe("latency", Labels::none(), 10);
        hub.event(EventKind::Placement, Labels::none(), &[]);

        let worker = Telemetry::enabled();
        worker.set_clock(|| 777);
        worker.incr("placements", Labels::none(), 3);
        worker.incr("migrations", Labels::tenant("acme"), 1);
        worker.gauge_set("depth", Labels::none(), 9);
        worker.gauge_set("depth", Labels::none(), 1);
        worker.observe("latency", Labels::none(), 1000);
        worker.span("trial").exit();
        worker.event(EventKind::Measurement, Labels::none(), &[]);

        hub.absorb(&worker);

        assert_eq!(hub.counter("placements", &Labels::none()), 5);
        assert_eq!(hub.counter("migrations", &Labels::tenant("acme")), 1);
        // Gauge takes the incoming value; high-water folds with max.
        assert_eq!(hub.gauge("depth", &Labels::none()), Some((1, 9)));
        let h = hub.histogram("latency", &Labels::none()).unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 10, 1000));

        let snap = hub.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].start_us, 777, "span keeps its own clock");
        assert_eq!(snap.events.len(), 2);
        // Events re-sequence under the absorbing hub's counter while
        // keeping their original timestamps.
        assert_eq!(snap.events[1].seq, 1);
        assert_eq!(snap.events[1].at_us, 777);
        assert_eq!(snap.events[1].kind, EventKind::Measurement);

        // Worker is untouched.
        assert_eq!(worker.counter("placements", &Labels::none()), 3);
    }

    #[test]
    fn absorb_is_exact_for_histogram_quantiles() {
        // Recording split across two hubs then absorbed must summarize
        // identically to recording everything into one hub.
        let whole = Telemetry::enabled();
        let left = Telemetry::enabled();
        let right = Telemetry::enabled();
        for v in 1..=1000u64 {
            whole.observe("lat", Labels::none(), v);
            let part = if v % 2 == 0 { &left } else { &right };
            part.observe("lat", Labels::none(), v);
        }
        let merged = Telemetry::enabled();
        merged.absorb(&left);
        merged.absorb(&right);
        assert_eq!(
            merged.histogram("lat", &Labels::none()),
            whole.histogram("lat", &Labels::none())
        );
    }

    #[test]
    fn absorb_noops_on_disabled_or_shared_hubs() {
        let hub = Telemetry::enabled();
        hub.incr("x", Labels::none(), 1);
        hub.absorb(&Telemetry::disabled());
        let alias = hub.clone();
        hub.absorb(&alias); // shared state: must not double or deadlock
        assert_eq!(hub.counter("x", &Labels::none()), 1);
        let disabled = Telemetry::disabled();
        disabled.absorb(&hub);
        assert!(!disabled.is_enabled());
    }

    #[test]
    fn clock_source_timestamps_spans() {
        let tel = Telemetry::enabled();
        let t = Arc::new(std::sync::atomic::AtomicU64::new(100));
        let tc = Arc::clone(&t);
        tel.set_clock(move || tc.load(std::sync::atomic::Ordering::Relaxed));
        let span = tel.span("work");
        t.store(250, std::sync::atomic::Ordering::Relaxed);
        span.exit();
        let snap = tel.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].start_us, 100);
        assert_eq!(snap.spans[0].end_us, Some(250));
    }
}
