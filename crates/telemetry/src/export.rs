//! Snapshots and JSON export of everything the hub recorded.

use std::io;
use std::path::{Path, PathBuf};

use crate::decision::DecisionRecord;
use crate::json::J;
use crate::metrics::HistogramSummary;
use crate::recorder::{Event, FieldValue};
use crate::span::SpanRecord;
use crate::{Labels, State};

/// A consistent copy of the hub's contents at one instant.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, labels, value)` per counter series.
    pub counters: Vec<(String, Labels, u64)>,
    /// `(name, labels, current, high_water)` per gauge series.
    pub gauges: Vec<(String, Labels, i64, i64)>,
    /// `(name, labels, summary)` per histogram series.
    pub histograms: Vec<(String, Labels, HistogramSummary)>,
    /// All spans in creation order.
    pub spans: Vec<SpanRecord>,
    /// Flight-recorder contents, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before this snapshot.
    pub dropped_events: u64,
    /// Decision records, oldest first.
    pub decisions: Vec<DecisionRecord>,
    /// Decisions evicted from the ring before this snapshot.
    pub dropped_decisions: u64,
}

impl Snapshot {
    pub(crate) fn capture(state: &State) -> Self {
        Self {
            counters: state
                .metrics
                .counters()
                .map(|((n, l), v)| (n.clone(), l.clone(), *v))
                .collect(),
            gauges: state
                .metrics
                .gauges()
                .map(|((n, l), g)| (n.clone(), l.clone(), g.value, g.high_water))
                .collect(),
            histograms: state
                .metrics
                .histograms()
                .map(|((n, l), h)| (n.clone(), l.clone(), h.summary()))
                .collect(),
            spans: state.spans.records().to_vec(),
            events: state.recorder.events().cloned().collect(),
            dropped_events: state.recorder.dropped(),
            decisions: state.decisions.records().cloned().collect(),
            dropped_decisions: state.decisions.dropped(),
        }
    }

    /// Renders the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut root = Vec::new();
        root.push((
            "counters".to_string(),
            J::Arr(
                self.counters
                    .iter()
                    .map(|(n, l, v)| {
                        let mut o = series_header(n, l);
                        o.push(("value".to_string(), J::U(*v)));
                        J::Obj(o)
                    })
                    .collect(),
            ),
        ));
        root.push((
            "gauges".to_string(),
            J::Arr(
                self.gauges
                    .iter()
                    .map(|(n, l, v, hw)| {
                        let mut o = series_header(n, l);
                        o.push(("value".to_string(), J::I(*v)));
                        o.push(("high_water".to_string(), J::I(*hw)));
                        J::Obj(o)
                    })
                    .collect(),
            ),
        ));
        root.push((
            "histograms".to_string(),
            J::Arr(
                self.histograms
                    .iter()
                    .map(|(n, l, s)| {
                        let mut o = series_header(n, l);
                        o.push(("count".to_string(), J::U(s.count)));
                        o.push(("min".to_string(), J::U(s.min)));
                        o.push(("max".to_string(), J::U(s.max)));
                        o.push(("mean".to_string(), J::F(s.mean)));
                        o.push(("p50".to_string(), J::U(s.p50)));
                        o.push(("p95".to_string(), J::U(s.p95)));
                        o.push(("p99".to_string(), J::U(s.p99)));
                        J::Obj(o)
                    })
                    .collect(),
            ),
        ));
        root.push((
            "spans".to_string(),
            J::Arr(
                self.spans
                    .iter()
                    .map(|s| {
                        J::Obj(vec![
                            ("id".to_string(), J::U(s.id as u64)),
                            (
                                "parent".to_string(),
                                s.parent.map(|p| J::U(p as u64)).unwrap_or(J::Null),
                            ),
                            ("trace".to_string(), s.trace.map(J::U).unwrap_or(J::Null)),
                            ("name".to_string(), J::S(s.name.clone())),
                            ("start_us".to_string(), J::U(s.start_us)),
                            ("end_us".to_string(), s.end_us.map(J::U).unwrap_or(J::Null)),
                        ])
                    })
                    .collect(),
            ),
        ));
        root.push((
            "events".to_string(),
            J::Arr(
                self.events
                    .iter()
                    .map(|e| {
                        let mut o = vec![
                            ("seq".to_string(), J::U(e.seq)),
                            ("at_us".to_string(), J::U(e.at_us)),
                            ("kind".to_string(), J::S(e.kind.as_str().to_string())),
                        ];
                        o.extend(labels_fields(&e.labels));
                        for (k, v) in &e.fields {
                            o.push((k.clone(), field_to_json(v)));
                        }
                        J::Obj(o)
                    })
                    .collect(),
            ),
        ));
        root.push(("dropped_events".to_string(), J::U(self.dropped_events)));
        root.push((
            "decisions".to_string(),
            J::Arr(
                self.decisions
                    .iter()
                    .map(|d| {
                        J::Obj(vec![
                            ("seq".to_string(), J::U(d.seq)),
                            ("trace".to_string(), d.trace.map(J::U).unwrap_or(J::Null)),
                            ("at_us".to_string(), J::U(d.at_us)),
                            ("stage".to_string(), J::S(d.stage.clone())),
                            ("module".to_string(), J::S(d.module.clone())),
                            ("candidate".to_string(), J::S(d.candidate.clone())),
                            ("accepted".to_string(), J::Bool(d.accepted)),
                            ("reason".to_string(), J::S(d.reason.as_str().to_string())),
                            ("score".to_string(), d.score.map(J::I).unwrap_or(J::Null)),
                            ("detail".to_string(), J::S(d.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ));
        root.push((
            "dropped_decisions".to_string(),
            J::U(self.dropped_decisions),
        ));
        J::Obj(root).render()
    }

    /// Writes the JSON snapshot to `path`, creating parent directories.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<PathBuf> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())?;
        Ok(path.to_path_buf())
    }
}

fn series_header(name: &str, labels: &Labels) -> Vec<(String, J)> {
    let mut o = vec![("name".to_string(), J::S(name.to_string()))];
    o.extend(labels_fields(labels));
    o
}

fn labels_fields(labels: &Labels) -> Vec<(String, J)> {
    let mut o = Vec::new();
    if let Some(t) = &labels.tenant {
        o.push(("tenant".to_string(), J::S(t.clone())));
    }
    if let Some(m) = &labels.module {
        o.push(("module".to_string(), J::S(m.clone())));
    }
    o
}

fn field_to_json(v: &FieldValue) -> J {
    match v {
        FieldValue::U64(u) => J::U(*u),
        FieldValue::I64(i) => J::I(*i),
        FieldValue::F64(f) => J::F(*f),
        FieldValue::Str(s) => J::S(s.clone()),
        FieldValue::Bool(b) => J::Bool(*b),
    }
}

#[cfg(test)]
mod tests {
    use crate::{Decision, EventKind, FieldValue, Labels, ReasonCode, Telemetry};

    #[test]
    fn export_is_valid_json_with_all_sections() {
        let tel = Telemetry::enabled();
        tel.incr("runs", Labels::tenant("acme"), 2);
        tel.gauge_set("depth", Labels::none(), 7);
        tel.observe("lat_us", Labels::module("acme", "stage0"), 1234);
        let s = tel.span("outer");
        tel.span("inner").exit();
        s.exit();
        tel.event(
            EventKind::ColdStart,
            Labels::module("acme", "stage0"),
            &[
                ("latency_us", FieldValue::from(250u64)),
                ("pool", FieldValue::from("gpu")),
            ],
        );

        let text = tel.snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&text).expect("export parses");
        assert_eq!(
            v.get("counters").and_then(|c| c.as_array()).map(Vec::len),
            Some(1)
        );
        assert_eq!(
            v.get("spans").and_then(|s| s.as_array()).map(Vec::len),
            Some(2)
        );
        let ev = &v.get("events").unwrap().as_array().unwrap()[0];
        assert_eq!(ev.get("kind").and_then(|k| k.as_str()), Some("cold_start"));
        assert_eq!(ev.get("latency_us").and_then(|x| x.as_u64()), Some(250));
        assert_eq!(ev.get("module").and_then(|m| m.as_str()), Some("stage0"));
    }

    #[test]
    fn export_carries_traces_and_decisions() {
        let tel = Telemetry::enabled();
        let root = tel.trace_root("cloud.submit");
        let ctx = root.ctx().unwrap();
        tel.span_in(&ctx, "sched.place").exit();
        tel.decide(Decision {
            ctx: Some(ctx),
            stage: "sched.place_task",
            module: "stage0",
            candidate: "cpu-03",
            accepted: false,
            reason: ReasonCode::Capacity,
            score: Some(-4),
            detail: "free=2 needed=6".to_string(),
        });
        root.exit();

        let text = tel.snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&text).expect("export parses");
        let spans = v.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans[0].get("trace").and_then(|t| t.as_u64()), Some(0));
        assert_eq!(spans[1].get("trace").and_then(|t| t.as_u64()), Some(0));
        let ds = v.get("decisions").unwrap().as_array().unwrap();
        assert_eq!(ds.len(), 1);
        let d = &ds[0];
        assert_eq!(d.get("candidate").and_then(|c| c.as_str()), Some("cpu-03"));
        assert_eq!(d.get("reason").and_then(|r| r.as_str()), Some("capacity"));
        assert_eq!(d.get("trace").and_then(|t| t.as_u64()), Some(0));
        assert_eq!(
            d.get("detail").and_then(|x| x.as_str()),
            Some("free=2 needed=6")
        );
    }
}
