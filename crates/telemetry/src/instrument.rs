//! Pre-registered instrument handles for lock-free hot paths.
//!
//! The hub's string-keyed API (`incr("actor.delivered", …)`) pays a
//! `Mutex<State>` acquisition plus a `BTreeMap<(String, Labels)>` walk
//! on every call — fine for control-plane events, ruinous at
//! per-message rates. A handle resolves that lookup *once* at
//! registration time into an `Arc`-shared atomic cell; after that the
//! hot path is a single relaxed atomic RMW with no lock and no string
//! hashing.
//!
//! Cells are *staging* areas, not the source of truth: pending deltas
//! are flushed into the hub's [`MetricsRegistry`] whenever the hub is
//! read (`counter`/`gauge`/`histogram`), snapshotted, or absorbed into
//! another hub. Because the flush folds into the same registry entries
//! the string-keyed path would have written — and a handle that was
//! never used flushes nothing — the JSON export is byte-identical
//! whichever path recorded the data.
//!
//! Handles obtained from a disabled hub are inert: no cell, one branch
//! per call, nothing recorded — mirroring the disabled-hub behaviour of
//! the string-keyed API.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::{MetricsRegistry, BUCKETS};
use crate::Labels;

/// Staging cell for a counter: deltas accumulate until the next flush.
#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    pending: AtomicU64,
}

/// Staging cell for a gauge. `high_water` is monotone for the life of
/// the cell, so re-flushing it is idempotent under the registry's
/// max-fold; `touched` gates flushing so an unused handle never
/// materializes a series.
#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    value: AtomicI64,
    high_water: AtomicI64,
    touched: AtomicBool,
}

/// Staging cell for a histogram: per-bucket pending counts plus the
/// pending sum. `min`/`max` are monotone (never reset by a flush);
/// folding them repeatedly is idempotent, like the gauge high-water.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Hot-path counter: `incr` is one relaxed `fetch_add`.
#[derive(Clone, Debug, Default)]
pub struct CounterHandle {
    cell: Option<Arc<CounterCell>>,
}

impl CounterHandle {
    pub(crate) fn active(cell: Arc<CounterCell>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Adds `delta` to the counter. A single atomic op; folded into the
    /// registry at the next flush point.
    #[inline]
    pub fn incr(&self, delta: u64) {
        if let Some(c) = &self.cell {
            c.pending.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Whether this handle records anywhere (false for handles minted
    /// by a disabled hub).
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }
}

/// Hot-path gauge: `set` is three relaxed atomic ops, still lock- and
/// lookup-free.
#[derive(Clone, Debug, Default)]
pub struct GaugeHandle {
    cell: Option<Arc<GaugeCell>>,
}

impl GaugeHandle {
    pub(crate) fn active(cell: Arc<GaugeCell>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Sets the gauge's current value, folding the high-water mark.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(c) = &self.cell {
            c.value.store(value, Ordering::Relaxed);
            c.high_water.fetch_max(value, Ordering::Relaxed);
            c.touched.store(true, Ordering::Relaxed);
        }
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }
}

/// Hot-path histogram: `observe` is four relaxed atomic ops.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle {
    cell: Option<Arc<HistogramCell>>,
}

impl HistogramHandle {
    pub(crate) fn active(cell: Arc<HistogramCell>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Records one observation into the staged log-bucketed histogram.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(c) = &self.cell {
            c.buckets[crate::metrics::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            c.sum.fetch_add(value, Ordering::Relaxed);
            c.min.fetch_min(value, Ordering::Relaxed);
            c.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }
}

enum CellRef {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

struct InstrumentEntry {
    name: String,
    labels: Labels,
    cell: CellRef,
}

/// All instruments registered against one hub. Registration is rare
/// (startup / `set_observer`), so lookup is a linear scan; the hot path
/// never touches this table.
#[derive(Default)]
pub(crate) struct InstrumentTable {
    entries: Vec<InstrumentEntry>,
}

impl InstrumentTable {
    pub fn register_counter(&mut self, name: &str, labels: &Labels) -> Arc<CounterCell> {
        if let Some(e) = self.find(name, labels) {
            if let CellRef::Counter(c) = &e.cell {
                return Arc::clone(c);
            }
        }
        let cell = Arc::new(CounterCell::default());
        self.entries.push(InstrumentEntry {
            name: name.to_string(),
            labels: labels.clone(),
            cell: CellRef::Counter(Arc::clone(&cell)),
        });
        cell
    }

    pub fn register_gauge(&mut self, name: &str, labels: &Labels) -> Arc<GaugeCell> {
        if let Some(e) = self.find(name, labels) {
            if let CellRef::Gauge(c) = &e.cell {
                return Arc::clone(c);
            }
        }
        let cell = Arc::new(GaugeCell::default());
        self.entries.push(InstrumentEntry {
            name: name.to_string(),
            labels: labels.clone(),
            cell: CellRef::Gauge(Arc::clone(&cell)),
        });
        cell
    }

    pub fn register_histogram(&mut self, name: &str, labels: &Labels) -> Arc<HistogramCell> {
        if let Some(e) = self.find(name, labels) {
            if let CellRef::Histogram(c) = &e.cell {
                return Arc::clone(c);
            }
        }
        let cell = Arc::new(HistogramCell::default());
        self.entries.push(InstrumentEntry {
            name: name.to_string(),
            labels: labels.clone(),
            cell: CellRef::Histogram(Arc::clone(&cell)),
        });
        cell
    }

    fn find(&self, name: &str, labels: &Labels) -> Option<&InstrumentEntry> {
        self.entries
            .iter()
            .find(|e| e.name == name && &e.labels == labels)
    }

    /// Drains every cell's pending data into the registry. Called at
    /// read/snapshot/absorb points; after it returns the registry holds
    /// exactly what the string-keyed path would hold.
    pub fn flush(&self, metrics: &mut MetricsRegistry) {
        for e in &self.entries {
            match &e.cell {
                CellRef::Counter(c) => {
                    let d = c.pending.swap(0, Ordering::Relaxed);
                    if d > 0 {
                        metrics.incr(&e.name, e.labels.clone(), d);
                    }
                }
                CellRef::Gauge(c) => {
                    if c.touched.swap(false, Ordering::Relaxed) {
                        metrics.gauge_flush(
                            &e.name,
                            e.labels.clone(),
                            c.value.load(Ordering::Relaxed),
                            c.high_water.load(Ordering::Relaxed),
                        );
                    }
                }
                CellRef::Histogram(c) => {
                    let mut counts = [0u64; BUCKETS];
                    let mut count = 0u64;
                    for (dst, src) in counts.iter_mut().zip(c.buckets.iter()) {
                        *dst = src.swap(0, Ordering::Relaxed);
                        count += *dst;
                    }
                    if count > 0 {
                        metrics.merge_parts(
                            &e.name,
                            e.labels.clone(),
                            counts,
                            count,
                            c.sum.swap(0, Ordering::Relaxed),
                            c.min.load(Ordering::Relaxed),
                            c.max.load(Ordering::Relaxed),
                        );
                    }
                }
            }
        }
    }
}
