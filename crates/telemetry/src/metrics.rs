//! Counters, gauges, and log-bucketed histograms.

use std::collections::BTreeMap;

use crate::Labels;

type Key = (String, Labels);

/// A gauge value plus its high-water mark.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Gauge {
    pub value: i64,
    pub high_water: i64,
}

/// Holds every metric series, keyed by `(name, labels)`.
#[derive(Default)]
pub(crate) struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Histogram>,
}

impl MetricsRegistry {
    pub fn incr(&mut self, name: &str, labels: Labels, delta: u64) {
        *self.counters.entry((name.to_string(), labels)).or_insert(0) += delta;
    }

    pub fn counter(&self, name: &str, labels: &Labels) -> u64 {
        self.counters
            .get(&(name.to_string(), labels.clone()))
            .copied()
            .unwrap_or(0)
    }

    pub fn gauge_set(&mut self, name: &str, labels: Labels, value: i64) {
        let g = self
            .gauges
            .entry((name.to_string(), labels))
            .or_insert(Gauge {
                value,
                high_water: value,
            });
        g.value = value;
        g.high_water = g.high_water.max(value);
    }

    pub fn gauge(&self, name: &str, labels: &Labels) -> Option<(i64, i64)> {
        self.gauges
            .get(&(name.to_string(), labels.clone()))
            .map(|g| (g.value, g.high_water))
    }

    /// Flush path for [`crate::instrument::GaugeHandle`]: takes the
    /// staged current value and max-folds the staged high-water mark
    /// (which is monotone in the cell, so repeated flushes are
    /// idempotent).
    pub fn gauge_flush(&mut self, name: &str, labels: Labels, value: i64, high_water: i64) {
        let g = self
            .gauges
            .entry((name.to_string(), labels))
            .or_insert(Gauge { value, high_water });
        g.value = value;
        g.high_water = g.high_water.max(high_water);
    }

    pub fn observe(&mut self, name: &str, labels: Labels, value: u64) {
        self.histograms
            .entry((name.to_string(), labels))
            .or_default()
            .record(value);
    }

    pub fn histogram(&self, name: &str, labels: &Labels) -> Option<&Histogram> {
        self.histograms.get(&(name.to_string(), labels.clone()))
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the incoming value (high-water marks max together), histograms
    /// merge bucket-wise. Used by [`crate::Telemetry::absorb`] to
    /// combine per-trial hubs from parallel experiment workers.
    /// Empties the registry. Used by the draining absorb
    /// ([`crate::Telemetry::absorb_draining`]): once a source hub's
    /// series are merged into a destination, clearing them is what makes
    /// repeated barrier merges additive instead of double-counting.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in other.counters.iter() {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in other.gauges.iter() {
            let e = self.gauges.entry(k.clone()).or_insert(*g);
            e.value = g.value;
            e.high_water = e.high_water.max(g.high_water);
        }
        for (k, h) in other.histograms.iter() {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Flush path for [`crate::instrument::HistogramHandle`]: merges a
    /// drained bucket-count array exactly, as if each staged
    /// observation had been `record`ed directly.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn merge_parts(
        &mut self,
        name: &str,
        labels: Labels,
        counts: [u64; BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) {
        let delta = Histogram {
            counts,
            count,
            sum: sum as u128,
            min,
            max,
        };
        self.histograms
            .entry((name.to_string(), labels))
            .or_default()
            .merge(&delta);
    }

    pub fn counters(&self) -> impl Iterator<Item = (&Key, &u64)> {
        self.counters.iter()
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&Key, &Gauge)> {
        self.gauges.iter()
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&Key, &Histogram)> {
        self.histograms.iter()
    }
}

/// Number of buckets: one for zero plus one per power of two up to
/// `u64::MAX`.
pub(crate) const BUCKETS: usize = 65;

/// A base-2 log-bucketed histogram.
///
/// Bucket 0 holds only zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`. A quantile estimate is the upper bound of the
/// bucket holding the rank-selected sample (clamped to the observed
/// min/max), so it never underestimates and its error is bounded by the
/// width of that bucket — which is what the property tests pin down.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Index of the bucket holding `value`.
pub fn bucket_index(value: u64) -> usize {
    match value {
        0 => 0,
        v => 64 - v.leading_zeros() as usize,
    }
}

/// Inclusive `(low, high)` bounds of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Exact: bucket counts and
    /// sums add, min/max fold, so merged quantile estimates are
    /// identical to having recorded every observation into one
    /// histogram in any order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`): the upper bound of
    /// the bucket holding the sample of rank `round(q * (count - 1))`,
    /// clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                let (_, hi) = bucket_bounds(i);
                return hi.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// The fixed summary used in exports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Snapshot of one histogram's headline statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        // True median is 500; the estimate lands at its bucket's upper
        // bound (511), never below the true value.
        assert!((500..=511).contains(&p50), "{p50}");
        assert!(h.quantile(0.0) >= 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.summary().count, 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
