//! A minimal JSON writer, keeping the crate dependency-free. Output is
//! pretty-printed (2-space indent) and parseable by any JSON reader.

use std::fmt::Write as _;

/// A JSON value being rendered.
#[derive(Clone, Debug)]
pub(crate) enum J {
    Null,
    Bool(bool),
    U(u64),
    I(i64),
    F(f64),
    S(String),
    Arr(Vec<J>),
    Obj(Vec<(String, J)>),
}

impl J {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            J::Null => out.push_str("null"),
            J::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            J::U(u) => {
                let _ = write!(out, "{u}");
            }
            J::I(i) => {
                let _ = write!(out, "{i}");
            }
            J::F(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            J::S(s) => write_escaped(out, s),
            J::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            J::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
