//! Nested span tracing over simulated time.

use crate::{Micros, Telemetry};

/// One completed (or still-open) span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within this hub (creation order).
    pub id: u32,
    /// Enclosing span open at entry, if any.
    pub parent: Option<u32>,
    /// Operation name, e.g. `"sched.place"`.
    pub name: String,
    /// Entry timestamp.
    pub start_us: Micros,
    /// Exit timestamp; `None` while the span is open.
    pub end_us: Option<Micros>,
}

/// All spans plus the stack of currently open ones.
#[derive(Default)]
pub(crate) struct SpanStore {
    records: Vec<SpanRecord>,
    open: Vec<u32>,
}

impl SpanStore {
    pub fn begin(&mut self, name: &str, at: Micros) -> u32 {
        let id = self.records.len() as u32;
        self.records.push(SpanRecord {
            id,
            parent: self.open.last().copied(),
            name: name.to_string(),
            start_us: at,
            end_us: None,
        });
        self.open.push(id);
        id
    }

    /// Closes `id` (and any children still open above it — guards
    /// dropping out of order close their subtree).
    pub fn end(&mut self, id: u32, at: Micros) {
        if let Some(pos) = self.open.iter().rposition(|&open| open == id) {
            for closed in self.open.drain(pos..) {
                let rec = &mut self.records[closed as usize];
                if rec.end_us.is_none() {
                    rec.end_us = Some(at);
                }
            }
        } else if let Some(rec) = self.records.get_mut(id as usize) {
            if rec.end_us.is_none() {
                rec.end_us = Some(at);
            }
        }
    }

    /// Appends another store's records, remapping ids (and parent
    /// links) past this store's so the combined id space stays unique.
    /// Absorbed spans keep their timestamps; any still-open ones stay
    /// open but are never pushed onto this store's open stack, so they
    /// cannot become parents of future spans.
    pub fn absorb(&mut self, records: &[SpanRecord]) {
        let offset = self.records.len() as u32;
        for r in records {
            self.records.push(SpanRecord {
                id: r.id + offset,
                parent: r.parent.map(|p| p + offset),
                name: r.name.clone(),
                start_us: r.start_us,
                end_us: r.end_us,
            });
        }
    }

    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }
}

/// Guard for an open span; the span closes when this drops. On a
/// disabled hub the guard is inert.
#[must_use = "dropping immediately closes the span at its start time"]
pub struct Span {
    tel: Telemetry,
    id: u32,
    active: bool,
}

impl Span {
    pub(crate) fn active(tel: Telemetry, id: u32) -> Self {
        Self {
            tel,
            id,
            active: true,
        }
    }

    pub(crate) fn inert() -> Self {
        Self {
            tel: Telemetry::disabled(),
            id: 0,
            active: false,
        }
    }

    /// Closes the span now (equivalent to dropping the guard).
    pub fn exit(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            self.tel.end_span(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn hub_with_ticking_clock() -> (Telemetry, Arc<AtomicU64>) {
        let tel = Telemetry::enabled();
        let t = Arc::new(AtomicU64::new(0));
        let tc = Arc::clone(&t);
        tel.set_clock(move || tc.load(Ordering::Relaxed));
        (tel, t)
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let (tel, t) = hub_with_ticking_clock();
        t.store(10, Ordering::Relaxed);
        let run = tel.span("cloud.run");
        t.store(20, Ordering::Relaxed);
        let place = tel.span("sched.place");
        t.store(30, Ordering::Relaxed);
        place.exit();
        t.store(35, Ordering::Relaxed);
        let seal = tel.span("crypto.seal");
        t.store(40, Ordering::Relaxed);
        seal.exit();
        t.store(50, Ordering::Relaxed);
        run.exit();

        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 3);
        let run = &spans[0];
        let place = &spans[1];
        let seal = &spans[2];
        assert_eq!(run.name, "cloud.run");
        assert_eq!(run.parent, None);
        assert_eq!((run.start_us, run.end_us), (10, Some(50)));
        // Both children hang off the root, and sit inside it in time.
        assert_eq!(place.parent, Some(run.id));
        assert_eq!(seal.parent, Some(run.id));
        assert_eq!((place.start_us, place.end_us), (20, Some(30)));
        assert_eq!((seal.start_us, seal.end_us), (35, Some(40)));
        assert!(place.end_us.unwrap() <= seal.start_us);
    }

    #[test]
    fn parent_drop_closes_open_children() {
        let (tel, t) = hub_with_ticking_clock();
        let outer = tel.span("outer");
        t.store(5, Ordering::Relaxed);
        let _inner = tel.span("inner");
        t.store(9, Ordering::Relaxed);
        drop(outer); // inner guard still alive, but subtree closes

        let spans = tel.snapshot().spans;
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].end_us, Some(9));
        assert_eq!(spans[0].end_us, Some(9));
    }

    #[test]
    fn fallback_ticks_are_monotone_without_a_clock() {
        let tel = Telemetry::enabled();
        let a = tel.span("a");
        let b = tel.span("b");
        b.exit();
        a.exit();
        let spans = tel.snapshot().spans;
        assert!(spans[0].start_us < spans[1].start_us);
        assert!(spans[1].end_us.unwrap() < spans[0].end_us.unwrap());
    }
}
