//! Nested span tracing over simulated time.

use crate::{Micros, Telemetry, TraceCtx};

/// One completed (or still-open) span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within this hub (creation order).
    pub id: u32,
    /// Enclosing span open at entry, if any.
    pub parent: Option<u32>,
    /// Causal trace this span belongs to, if minted under a
    /// [`TraceCtx`]. Plain spans inherit the trace of their parent.
    pub trace: Option<u64>,
    /// Operation name, e.g. `"sched.place"`.
    pub name: String,
    /// Entry timestamp.
    pub start_us: Micros,
    /// Exit timestamp; `None` while the span is open.
    pub end_us: Option<Micros>,
}

/// All spans plus the stack of currently open ones.
#[derive(Default)]
pub(crate) struct SpanStore {
    records: Vec<SpanRecord>,
    open: Vec<u32>,
}

impl SpanStore {
    pub fn begin(&mut self, name: &str, at: Micros) -> u32 {
        let parent = self.open.last().copied();
        let trace = parent.and_then(|p| self.records[p as usize].trace);
        self.begin_at(name, at, parent, trace)
    }

    /// Opens a span with an *explicit* parent and trace — the causal
    /// propagation path. The explicit parent need not be the top of the
    /// open stack (the context may have crossed a component boundary),
    /// but the new span still joins the open stack so plain nested
    /// spans attach beneath it.
    pub fn begin_at(
        &mut self,
        name: &str,
        at: Micros,
        parent: Option<u32>,
        trace: Option<u64>,
    ) -> u32 {
        let id = self.records.len() as u32;
        self.records.push(SpanRecord {
            id,
            parent,
            trace,
            name: name.to_string(),
            start_us: at,
            end_us: None,
        });
        self.open.push(id);
        id
    }

    /// The trace id recorded for span `id`, if any.
    pub fn trace_of(&self, id: u32) -> Option<u64> {
        self.records.get(id as usize).and_then(|r| r.trace)
    }

    /// Closes `id` (and any children still open above it — guards
    /// dropping out of order close their subtree).
    pub fn end(&mut self, id: u32, at: Micros) {
        if let Some(pos) = self.open.iter().rposition(|&open| open == id) {
            for closed in self.open.drain(pos..) {
                let rec = &mut self.records[closed as usize];
                if rec.end_us.is_none() {
                    rec.end_us = Some(at);
                }
            }
        } else if let Some(rec) = self.records.get_mut(id as usize) {
            if rec.end_us.is_none() {
                rec.end_us = Some(at);
            }
        }
    }

    /// Appends another store's records, remapping ids (and parent
    /// links) past this store's so the combined id space stays unique,
    /// and shifting trace ids by `trace_offset` so traces minted by
    /// different worker hubs never collide after a merge.
    /// Absorbed spans keep their timestamps; any still-open ones stay
    /// open but are never pushed onto this store's open stack, so they
    /// cannot become parents of future spans.
    pub fn absorb(&mut self, records: &[SpanRecord], trace_offset: u64) {
        let offset = self.records.len() as u32;
        for r in records {
            self.records.push(SpanRecord {
                id: r.id + offset,
                parent: r.parent.map(|p| p + offset),
                trace: r.trace.map(|t| t + trace_offset),
                name: r.name.clone(),
                start_us: r.start_us,
                end_us: r.end_us,
            });
        }
    }

    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Empties the store for a draining absorb. Open spans hold indices
    /// into `records`, so draining under one would corrupt the guard's
    /// close — that is a caller bug, not a recoverable state.
    pub fn drain(&mut self) {
        assert!(
            self.open.is_empty(),
            "SpanStore::drain with {} span(s) still open",
            self.open.len()
        );
        self.records.clear();
    }
}

/// Guard for an open span; the span closes when this drops. On a
/// disabled hub the guard is inert.
#[must_use = "dropping immediately closes the span at its start time"]
pub struct Span {
    tel: Telemetry,
    id: u32,
    trace: Option<u64>,
    active: bool,
}

impl Span {
    pub(crate) fn active(tel: Telemetry, id: u32, trace: Option<u64>) -> Self {
        Self {
            tel,
            id,
            trace,
            active: true,
        }
    }

    pub(crate) fn inert() -> Self {
        Self {
            tel: Telemetry::disabled(),
            id: 0,
            trace: None,
            active: false,
        }
    }

    /// The context to hand to a callee so its spans become children of
    /// this one. `None` on inert guards or spans outside any trace.
    pub fn ctx(&self) -> Option<TraceCtx> {
        if !self.active {
            return None;
        }
        self.trace.map(|trace_id| TraceCtx {
            trace_id,
            span: self.id,
        })
    }

    /// Closes the span now (equivalent to dropping the guard).
    pub fn exit(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            self.tel.end_span(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn hub_with_ticking_clock() -> (Telemetry, Arc<AtomicU64>) {
        let tel = Telemetry::enabled();
        let t = Arc::new(AtomicU64::new(0));
        let tc = Arc::clone(&t);
        tel.set_clock(move || tc.load(Ordering::Relaxed));
        (tel, t)
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let (tel, t) = hub_with_ticking_clock();
        t.store(10, Ordering::Relaxed);
        let run = tel.span("cloud.run");
        t.store(20, Ordering::Relaxed);
        let place = tel.span("sched.place");
        t.store(30, Ordering::Relaxed);
        place.exit();
        t.store(35, Ordering::Relaxed);
        let seal = tel.span("crypto.seal");
        t.store(40, Ordering::Relaxed);
        seal.exit();
        t.store(50, Ordering::Relaxed);
        run.exit();

        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 3);
        let run = &spans[0];
        let place = &spans[1];
        let seal = &spans[2];
        assert_eq!(run.name, "cloud.run");
        assert_eq!(run.parent, None);
        assert_eq!((run.start_us, run.end_us), (10, Some(50)));
        // Both children hang off the root, and sit inside it in time.
        assert_eq!(place.parent, Some(run.id));
        assert_eq!(seal.parent, Some(run.id));
        assert_eq!((place.start_us, place.end_us), (20, Some(30)));
        assert_eq!((seal.start_us, seal.end_us), (35, Some(40)));
        assert!(place.end_us.unwrap() <= seal.start_us);
    }

    #[test]
    fn parent_drop_closes_open_children() {
        let (tel, t) = hub_with_ticking_clock();
        let outer = tel.span("outer");
        t.store(5, Ordering::Relaxed);
        let _inner = tel.span("inner");
        t.store(9, Ordering::Relaxed);
        drop(outer); // inner guard still alive, but subtree closes

        let spans = tel.snapshot().spans;
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].end_us, Some(9));
        assert_eq!(spans[0].end_us, Some(9));
    }

    #[test]
    fn early_return_closes_span_via_drop_guard() {
        // Regression: a `?`-style early return must not leak an open
        // span — the guard ends it on drop.
        fn flaky(tel: &Telemetry, fail: bool) -> Result<(), &'static str> {
            let _s = tel.span("work.early_return");
            if fail {
                return Err("bail");
            }
            Ok(())
        }
        let (tel, t) = hub_with_ticking_clock();
        t.store(7, Ordering::Relaxed);
        assert!(flaky(&tel, true).is_err());
        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].end_us,
            Some(7),
            "early return still closed the span"
        );

        // `?` propagation through a second frame behaves the same.
        fn outer(tel: &Telemetry) -> Result<(), &'static str> {
            let _o = tel.span("outer.q");
            flaky(tel, true)?;
            Ok(())
        }
        assert!(outer(&tel).is_err());
        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 3);
        assert!(
            spans.iter().all(|s| s.end_us.is_some()),
            "no span leaks open across ? propagation"
        );
    }

    #[test]
    fn trace_context_links_spans_across_call_boundaries() {
        let (tel, t) = hub_with_ticking_clock();
        t.store(1, Ordering::Relaxed);
        let root = tel.trace_root("cloud.submit");
        let ctx = root.ctx().expect("root carries a trace context");
        // A child opened from the context, as a callee would.
        let child = tel.span_in(&ctx, "sched.place");
        // A plain span nested under the child inherits its trace.
        let plain = tel.span("hal.pool.allocate");
        plain.exit();
        child.exit();
        root.exit();

        let spans = tel.snapshot().spans;
        assert_eq!(spans.len(), 3);
        let trace = spans[0].trace.expect("root has a trace id");
        assert!(spans.iter().all(|s| s.trace == Some(trace)));
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[2].parent, Some(spans[1].id));
    }

    #[test]
    fn separate_roots_get_distinct_trace_ids() {
        let tel = Telemetry::enabled();
        let a = tel.trace_root("submit.a");
        let ta = a.ctx().unwrap().trace_id;
        a.exit();
        let b = tel.trace_root("submit.b");
        let tb = b.ctx().unwrap().trace_id;
        b.exit();
        assert_ne!(ta, tb);
    }

    #[test]
    fn untraced_spans_have_no_ctx() {
        let tel = Telemetry::enabled();
        let s = tel.span("loose");
        assert!(s.ctx().is_none(), "span outside any trace has no context");
        s.exit();
        assert!(Telemetry::disabled().span("x").ctx().is_none());
    }

    #[test]
    fn fallback_ticks_are_monotone_without_a_clock() {
        let tel = Telemetry::enabled();
        let a = tel.span("a");
        let b = tel.span("b");
        b.exit();
        a.exit();
        let spans = tel.snapshot().spans;
        assert!(spans[0].start_us < spans[1].start_us);
        assert!(spans[1].end_us.unwrap() < spans[0].end_us.unwrap());
    }
}
