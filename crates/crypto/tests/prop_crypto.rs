//! Property-based tests for the crypto substrate.

use proptest::prelude::*;
use udc_crypto::aead::{open, seal, Key, Nonce};
use udc_crypto::chacha20::ChaCha20;
use udc_crypto::merkle::MerkleTree;
use udc_crypto::replay::ReplayGuard;
use udc_crypto::sha256::{sha256, Sha256};

proptest! {
    /// Incremental hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        splits in prop::collection::vec(0usize..2048, 0..5),
    ) {
        let oneshot = sha256(&data);
        let mut points: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        points.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for p in points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// ChaCha20 is an involution under the same key/nonce/counter.
    #[test]
    fn chacha_round_trip(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        counter in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        let ct = ChaCha20::new(&key, &nonce, counter).apply_to_vec(&data);
        let pt = ChaCha20::new(&key, &nonce, counter).apply_to_vec(&ct);
        prop_assert_eq!(pt, data);
    }

    /// AEAD seal/open round-trips and any single-bit flip in the
    /// ciphertext is rejected.
    #[test]
    fn aead_round_trip_and_tamper(
        secret in prop::collection::vec(any::<u8>(), 1..64),
        aad in prop::collection::vec(any::<u8>(), 0..32),
        data in prop::collection::vec(any::<u8>(), 1..512),
        seq in 1u64..u64::MAX,
        flip_bit in 0usize..64,
    ) {
        let key = Key::derive(&secret, b"prop");
        let boxed = seal(&key, Nonce::from_sequence(seq), &aad, &data);
        prop_assert_eq!(open(&key, &aad, &boxed).unwrap(), data.clone());

        let mut tampered = boxed.clone();
        let bit = flip_bit % (tampered.ciphertext.len() * 8);
        tampered.ciphertext[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(open(&key, &aad, &tampered).is_err());
    }

    /// Every Merkle proof verifies; a proof never verifies a different
    /// leaf's content.
    #[test]
    fn merkle_proofs_sound(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..40),
        probe in any::<usize>(),
    ) {
        let tree = MerkleTree::build(&chunks).unwrap();
        let root = tree.root();
        let i = probe % chunks.len();
        let proof = tree.prove(i).unwrap();
        prop_assert!(MerkleTree::verify(&root, &chunks[i], &proof));
        // Cross-verification with a different chunk's content fails
        // unless that content happens to be byte-identical.
        let j = (i + 1) % chunks.len();
        if chunks[j] != chunks[i] {
            prop_assert!(!MerkleTree::verify(&root, &chunks[j], &proof));
        }
    }

    /// The replay guard accepts a strictly increasing subsequence and
    /// rejects every repeated element.
    #[test]
    fn replay_guard_semantics(seqs in prop::collection::vec(1u64..1000, 1..100)) {
        let mut guard = ReplayGuard::new();
        let mut high = 0u64;
        for s in seqs {
            let res = guard.check(s);
            if s > high {
                prop_assert!(res.is_ok());
                high = s;
            } else {
                prop_assert!(res.is_err());
            }
            prop_assert_eq!(guard.high_water(), high);
        }
    }

    /// Quotes verify if and only if untampered (signature covers claims).
    #[test]
    fn attestation_tamper_evident(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform32(any::<u8>()),
        events in prop::collection::vec("[a-z]{1,12}", 0..6),
        claim_val in "[a-z0-9]{1,8}",
    ) {
        use udc_crypto::attest::{AttestationPolicy, RootOfTrust, Verifier};
        let mut rot = RootOfTrust::new("d0", key);
        for e in &events {
            rot.measure(e);
        }
        let mut claims = std::collections::BTreeMap::new();
        claims.insert("k".to_string(), claim_val.clone());
        let quote = rot.quote(nonce, claims);
        let mut v = Verifier::new();
        v.trust_device("d0", key);
        let policy = AttestationPolicy::measurement(rot.measurement()).require("k", claim_val);
        prop_assert!(v.verify(&quote, &nonce, &policy).is_ok());

        let mut forged = quote.clone();
        forged.claims.insert("k".to_string(), "forged".to_string());
        prop_assert!(v.verify(&forged, &nonce, &policy).is_err());
    }
}
