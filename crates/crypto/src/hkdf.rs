//! HKDF-style key derivation (RFC 5869 extract-and-expand, SHA-256),
//! used to derive per-module and per-purpose keys from a tenant master
//! key so that each fine-grained module gets independent key material.

use crate::hmac::hmac_sha256;

/// Derives a 32-byte key from `ikm` (input keying material), an optional
/// `salt`, and a context `info` string.
///
/// Implements HKDF-Extract followed by a single HKDF-Expand block, which
/// suffices for 32-byte outputs.
pub fn derive_key(ikm: &[u8], salt: &[u8], info: &[u8]) -> [u8; 32] {
    let prk = hmac_sha256(salt, ikm);
    // Expand: T(1) = HMAC(PRK, info || 0x01).
    let mut msg = Vec::with_capacity(info.len() + 1);
    msg.extend_from_slice(info);
    msg.push(0x01);
    hmac_sha256(&prk, &msg)
}

/// Derives `n` independent 32-byte keys using full HKDF-Expand chaining.
pub fn derive_keys(ikm: &[u8], salt: &[u8], info: &[u8], n: usize) -> Vec<[u8; 32]> {
    assert!(n <= 255, "HKDF-Expand supports at most 255 blocks");
    let prk = hmac_sha256(salt, ikm);
    let mut out = Vec::with_capacity(n);
    let mut prev: Vec<u8> = Vec::new();
    for i in 1..=n {
        let mut msg = prev.clone();
        msg.extend_from_slice(info);
        msg.push(i as u8);
        let t = hmac_sha256(&prk, &msg);
        out.push(t);
        prev = t.to_vec();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 5869 test case 1 (first 32 bytes of OKM).
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = derive_key(&ikm, &salt, &info);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        );
    }

    #[test]
    fn derive_keys_first_block_matches_derive_key() {
        let keys = derive_keys(b"master", b"salt", b"ctx", 3);
        assert_eq!(keys[0], derive_key(b"master", b"salt", b"ctx"));
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
    }

    #[test]
    fn distinct_info_distinct_keys() {
        let a = derive_key(b"ikm", b"s", b"module-A1");
        let b = derive_key(b"ikm", b"s", b"module-A2");
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        assert_eq!(derive_key(b"x", b"y", b"z"), derive_key(b"x", b"y", b"z"));
    }

    #[test]
    #[should_panic(expected = "255")]
    fn too_many_blocks_panics() {
        derive_keys(b"x", b"y", b"z", 256);
    }
}
