//! ChaCha20 stream cipher (RFC 8439), used for confidentiality of data
//! leaving an execution environment (§3.3).

/// ChaCha20 keystream generator / stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

impl ChaCha20 {
    /// Creates a cipher instance from a 256-bit key and 96-bit nonce.
    /// The block counter starts at `counter` (RFC 8439 uses 1 for
    /// encryption when block 0 is reserved for a MAC key; we expose it).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for i in 0..8 {
            k[i] = u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        let mut n = [0u32; 3];
        for i in 0..3 {
            n[i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        Self {
            key: k,
            nonce: n,
            counter,
        }
    }

    fn block(&self, counter: u32) -> [u8; 64] {
        // "expand 32-byte k"
        let mut state = [
            0x61707865u32,
            0x3320646e,
            0x79622d32,
            0x6b206574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter,
            self.nonce[0],
            self.nonce[1],
            self.nonce[2],
        ];
        let initial = state;
        for _ in 0..10 {
            // Column rounds.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream into `data` in place (encryption and decryption
    /// are the same operation).
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut counter = self.counter;
        for chunk in data.chunks_mut(64) {
            let ks = self.block(counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
        self.counter = counter;
    }

    /// Convenience: encrypts a copy of `data`.
    pub fn apply_to_vec(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply(&mut out);
        out
    }
}

fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let c = ChaCha20::new(&key, &nonce, 1);
        let block = c.block(1);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&block[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut c = ChaCha20::new(&key, &nonce, 1);
        let ct = c.apply_to_vec(plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(hex(&ct[96..]), "5af90bbf74a35be6b40b8eedf2785e42874d");
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let msg: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        let ct = ChaCha20::new(&key, &nonce, 1).apply_to_vec(&msg);
        assert_ne!(ct, msg);
        let pt = ChaCha20::new(&key, &nonce, 1).apply_to_vec(&ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let msg = vec![0x5au8; 200];
        let one_shot = ChaCha20::new(&key, &nonce, 0).apply_to_vec(&msg);
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut streamed = Vec::new();
        // 64-byte-aligned chunks stream identically; counter advances per block.
        for chunk in msg.chunks(64) {
            streamed.extend_from_slice(&c.apply_to_vec(chunk));
        }
        assert_eq!(streamed, one_shot);
    }

    #[test]
    fn different_nonces_different_streams() {
        let key = [1u8; 32];
        let msg = vec![0u8; 64];
        let a = ChaCha20::new(&key, &[0u8; 12], 0).apply_to_vec(&msg);
        let b = ChaCha20::new(&key, &[1u8; 12], 0).apply_to_vec(&msg);
        assert_ne!(a, b);
    }
}
