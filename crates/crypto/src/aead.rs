//! Authenticated encryption (encrypt-then-MAC) for data leaving an
//! execution environment (§3.3).
//!
//! Construction: `ct = ChaCha20(enc_key, nonce, counter=1, pt)`,
//! `tag = HMAC-SHA256(mac_key, nonce || aad_len || aad || ct)`, with
//! `enc_key`/`mac_key` derived from the sealing key via HKDF so the same
//! key is never used for both purposes.

use crate::chacha20::ChaCha20;
use crate::hkdf::derive_key;
use crate::hmac::{hmac_sha256, verify_tag};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit sealing key.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Key(pub [u8; 32]);

impl Key {
    /// Derives a key from arbitrary bytes (e.g. a tenant secret and a
    /// module name).
    pub fn derive(ikm: &[u8], context: &[u8]) -> Self {
        Key(derive_key(ikm, b"udc-seal", context))
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.write_str("Key(<redacted>)")
    }
}

/// A 96-bit nonce. Must be unique per (key, message).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nonce(pub [u8; 12]);

impl Nonce {
    /// Builds a nonce from a message sequence number (the replay
    /// counter), which guarantees uniqueness per key when sequence
    /// numbers never repeat.
    pub fn from_sequence(seq: u64) -> Self {
        let mut n = [0u8; 12];
        n[4..].copy_from_slice(&seq.to_be_bytes());
        Nonce(n)
    }
}

/// An encrypted, integrity-protected message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBox {
    /// Nonce used for sealing.
    pub nonce: Nonce,
    /// Ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC tag over nonce, AAD and ciphertext.
    pub tag: [u8; 32],
}

/// Errors from opening a sealed box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The authentication tag did not verify: the ciphertext or the
    /// associated data was tampered with, or the key is wrong.
    TagMismatch,
}

impl fmt::Display for AeadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AeadError::TagMismatch => f.write_str("authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

fn subkeys(key: &Key) -> ([u8; 32], [u8; 32]) {
    let enc = derive_key(&key.0, b"udc-aead", b"enc");
    let mac = derive_key(&key.0, b"udc-aead", b"mac");
    (enc, mac)
}

fn compute_tag(mac_key: &[u8; 32], nonce: &Nonce, aad: &[u8], ct: &[u8]) -> [u8; 32] {
    let mut msg = Vec::with_capacity(12 + 8 + aad.len() + ct.len());
    msg.extend_from_slice(&nonce.0);
    msg.extend_from_slice(&(aad.len() as u64).to_be_bytes());
    msg.extend_from_slice(aad);
    msg.extend_from_slice(ct);
    hmac_sha256(mac_key, &msg)
}

/// Seals `plaintext` under `key` and `nonce`, binding `aad` (associated
/// data such as the destination module id) into the tag.
pub fn seal(key: &Key, nonce: Nonce, aad: &[u8], plaintext: &[u8]) -> SealedBox {
    let (enc, mac) = subkeys(key);
    let mut ct = plaintext.to_vec();
    ChaCha20::new(&enc, &nonce.0, 1).apply(&mut ct);
    let tag = compute_tag(&mac, &nonce, aad, &ct);
    SealedBox {
        nonce,
        ciphertext: ct,
        tag,
    }
}

/// Opens a sealed box, verifying the tag before decrypting.
pub fn open(key: &Key, aad: &[u8], boxed: &SealedBox) -> Result<Vec<u8>, AeadError> {
    let (enc, mac) = subkeys(key);
    let expected = compute_tag(&mac, &boxed.nonce, aad, &boxed.ciphertext);
    if !verify_tag(&expected, &boxed.tag) {
        return Err(AeadError::TagMismatch);
    }
    let mut pt = boxed.ciphertext.clone();
    ChaCha20::new(&enc, &boxed.nonce.0, 1).apply(&mut pt);
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let key = Key::derive(b"tenant-secret", b"S1");
        let boxed = seal(&key, Nonce::from_sequence(1), b"aad", b"medical record");
        let pt = open(&key, b"aad", &boxed).unwrap();
        assert_eq!(pt, b"medical record");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = Key::derive(b"k", b"c");
        let mut boxed = seal(&key, Nonce::from_sequence(2), b"", b"data");
        boxed.ciphertext[0] ^= 1;
        assert_eq!(open(&key, b"", &boxed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn tampered_tag_rejected() {
        let key = Key::derive(b"k", b"c");
        let mut boxed = seal(&key, Nonce::from_sequence(3), b"", b"data");
        boxed.tag[5] ^= 0xff;
        assert_eq!(open(&key, b"", &boxed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn wrong_aad_rejected() {
        let key = Key::derive(b"k", b"c");
        let boxed = seal(&key, Nonce::from_sequence(4), b"to:A3", b"data");
        assert_eq!(open(&key, b"to:A4", &boxed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = Key::derive(b"k1", b"c");
        let k2 = Key::derive(b"k2", b"c");
        let boxed = seal(&k1, Nonce::from_sequence(5), b"", b"data");
        assert_eq!(open(&k2, b"", &boxed), Err(AeadError::TagMismatch));
    }

    #[test]
    fn empty_plaintext_ok() {
        let key = Key::derive(b"k", b"c");
        let boxed = seal(&key, Nonce::from_sequence(6), b"", b"");
        assert_eq!(open(&key, b"", &boxed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn nonce_from_sequence_unique() {
        assert_ne!(Nonce::from_sequence(1), Nonce::from_sequence(2));
        assert_eq!(Nonce::from_sequence(7), Nonce::from_sequence(7));
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let key = Key::derive(b"k", b"c");
        let boxed = seal(&key, Nonce::from_sequence(8), b"", b"visible text!");
        assert_ne!(boxed.ciphertext.as_slice(), b"visible text!".as_slice());
    }

    #[test]
    fn key_debug_redacts() {
        let key = Key::derive(b"super-secret", b"c");
        assert_eq!(format!("{key:?}"), "Key(<redacted>)");
    }

    #[test]
    fn sealed_box_serde_round_trip() {
        let key = Key::derive(b"k", b"c");
        let boxed = seal(&key, Nonce::from_sequence(9), b"a", b"payload");
        let js = serde_json::to_string(&boxed).unwrap();
        let back: SealedBox = serde_json::from_str(&js).unwrap();
        assert_eq!(back, boxed);
        assert_eq!(open(&key, b"a", &back).unwrap(), b"payload");
    }
}
