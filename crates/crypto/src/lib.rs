//! # udc-crypto — data protection and remote attestation for UDC
//!
//! Implements the security substrate §3.3 and §4 of the paper rely on:
//!
//! - **Confidentiality**: ChaCha20 stream cipher (RFC 8439 core).
//! - **Integrity**: SHA-256, HMAC-SHA256, and Merkle trees for protecting
//!   data that leaves an execution environment.
//! - **Replay protection**: monotonic-counter envelopes.
//! - **Authenticated encryption**: encrypt-then-MAC sealing combining the
//!   above.
//! - **Key derivation**: an HKDF-style expand built on HMAC.
//! - **Remote attestation** (§4): measurement registers (PCR-like),
//!   quotes signed by a simulated hardware root of trust, and verifier-
//!   side freshness and policy checks — "users can verify important
//!   properties without trusting the vendor and by just trusting the
//!   hardware itself".
//!
//! ## Security disclaimer
//!
//! These are *clean-room, simulation-grade* implementations written for
//! reproducing the paper's system behaviour. They are functionally
//! correct against published test vectors but are **not hardened against
//! side channels** and must not be used to protect real data.

pub mod aead;
pub mod attest;
pub mod chacha20;
pub mod hkdf;
pub mod hmac;
pub mod merkle;
pub mod replay;
pub mod sha256;

pub use aead::{open, seal, AeadError, Key, Nonce, SealedBox};
pub use attest::{
    AttestError, AttestationPolicy, MeasurementRegister, Quote, RootOfTrust, Verifier,
};
pub use chacha20::ChaCha20;
pub use hkdf::derive_key;
pub use hmac::hmac_sha256;
pub use merkle::{MerkleProof, MerkleTree};
pub use replay::{ReplayError, ReplayGuard, SequencedMessage};
pub use sha256::{sha256, Sha256};
