//! Replay protection via monotonic sequence numbers (§3.3: users "could
//! also specify protection options for their data (e.g., ... replay
//! protection) when these data leave the execution environment").
//!
//! Each (sender, receiver) channel carries a strictly increasing sequence
//! number that is bound into the AEAD tag via the nonce; the receiver's
//! [`ReplayGuard`] rejects any message whose sequence number is not
//! strictly greater than the highest accepted so far.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A message with a sequence number attached.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequencedMessage<T> {
    /// Strictly increasing per-channel sequence number.
    pub seq: u64,
    /// Payload.
    pub payload: T,
}

/// Errors from replay checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The message's sequence number was already accepted (or older):
    /// a replayed or reordered-too-late message.
    Replayed {
        /// Sequence number observed.
        seq: u64,
        /// Highest sequence accepted so far.
        high_water: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Replayed { seq, high_water } => write!(
                f,
                "replayed message: seq {seq} <= high-water mark {high_water}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Receiver-side replay detector: accepts strictly increasing sequence
/// numbers only.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplayGuard {
    high_water: u64,
    accepted: u64,
    rejected: u64,
}

impl ReplayGuard {
    /// Creates a guard that accepts any sequence number >= 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks and records a sequence number.
    pub fn check(&mut self, seq: u64) -> Result<(), ReplayError> {
        if seq <= self.high_water {
            self.rejected += 1;
            return Err(ReplayError::Replayed {
                seq,
                high_water: self.high_water,
            });
        }
        self.high_water = seq;
        self.accepted += 1;
        Ok(())
    }

    /// Highest accepted sequence number.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Counts of accepted / rejected messages (telemetry).
    pub fn stats(&self) -> (u64, u64) {
        (self.accepted, self.rejected)
    }
}

/// Sender-side sequence allocator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SequenceSource {
    next: u64,
}

impl SequenceSource {
    /// Creates a source starting at sequence 1.
    pub fn new() -> Self {
        Self { next: 0 }
    }

    /// Allocates the next sequence number (starting from 1).
    pub fn next_seq(&mut self) -> u64 {
        self.next += 1;
        self.next
    }

    /// Wraps a payload with the next sequence number.
    pub fn wrap<T>(&mut self, payload: T) -> SequencedMessage<T> {
        SequencedMessage {
            seq: self.next_seq(),
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_accepted() {
        let mut g = ReplayGuard::new();
        for seq in 1..=10 {
            g.check(seq).unwrap();
        }
        assert_eq!(g.high_water(), 10);
        assert_eq!(g.stats(), (10, 0));
    }

    #[test]
    fn exact_replay_rejected() {
        let mut g = ReplayGuard::new();
        g.check(5).unwrap();
        let err = g.check(5).unwrap_err();
        assert!(matches!(
            err,
            ReplayError::Replayed {
                seq: 5,
                high_water: 5
            }
        ));
    }

    #[test]
    fn stale_message_rejected() {
        let mut g = ReplayGuard::new();
        g.check(10).unwrap();
        assert!(g.check(3).is_err());
        assert_eq!(g.stats(), (1, 1));
    }

    #[test]
    fn gaps_allowed() {
        // Lost messages must not wedge the channel.
        let mut g = ReplayGuard::new();
        g.check(1).unwrap();
        g.check(100).unwrap();
        assert_eq!(g.high_water(), 100);
    }

    #[test]
    fn zero_rejected() {
        let mut g = ReplayGuard::new();
        assert!(g.check(0).is_err());
    }

    #[test]
    fn source_produces_strictly_increasing() {
        let mut s = SequenceSource::new();
        let a = s.wrap("x");
        let b = s.wrap("y");
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
        let mut g = ReplayGuard::new();
        g.check(a.seq).unwrap();
        g.check(b.seq).unwrap();
        assert!(g.check(a.seq).is_err());
    }
}
