//! HMAC-SHA256 (RFC 2104), used for integrity protection and as the
//! quote-signing primitive of the simulated hardware root of trust.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = sha256(key);
        k[..32].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time-ish tag comparison.
///
/// Compares all bytes regardless of where the first mismatch occurs so a
/// verifier does not leak the mismatch position through timing. (The
/// simulation does not model timing, but the discipline costs nothing.)
pub fn verify_tag(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= expected[i] ^ actual[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn verify_tag_accepts_and_rejects() {
        let t1 = hmac_sha256(b"k", b"m");
        let mut t2 = t1;
        assert!(verify_tag(&t1, &t2));
        t2[31] ^= 1;
        assert!(!verify_tag(&t1, &t2));
        t2[31] ^= 1;
        t2[0] ^= 0x80;
        assert!(!verify_tag(&t1, &t2));
    }
}
