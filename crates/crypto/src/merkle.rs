//! Merkle trees for integrity protection of stored data modules (§3.3).
//!
//! A data module replicated across untrusted storage devices keeps a
//! Merkle root inside the trusted environment; any chunk fetched back is
//! verified with an inclusion proof, detecting tampering by the provider
//! or the storage substrate.

use crate::sha256::{sha256, Sha256};
use serde::{Deserialize, Serialize};

/// Domain-separation prefixes so a leaf can never be confused with an
/// interior node (second-preimage hardening).
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

fn hash_leaf(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(left);
    h.update(right);
    h.finalize()
}

/// A Merkle tree over a sequence of data chunks.
///
/// Odd nodes at each level are promoted (Bitcoin-style duplication is
/// avoided; the lone node moves up unchanged).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// levels\[0\] = leaf hashes, last level = [root].
    levels: Vec<Vec<[u8; 32]>>,
}

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes from leaf level upward, with the side the sibling
    /// is on (`true` = sibling is on the right).
    pub siblings: Vec<([u8; 32], bool)>,
}

impl MerkleTree {
    /// Builds a tree over `chunks`. Returns `None` for an empty input
    /// (an empty data module has no meaningful root).
    pub fn build<T: AsRef<[u8]>>(chunks: &[T]) -> Option<Self> {
        if chunks.is_empty() {
            return None;
        }
        let mut levels = vec![chunks
            .iter()
            .map(|c| hash_leaf(c.as_ref()))
            .collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(hash_node(&prev[i], &prev[i + 1]));
                    i += 2;
                } else {
                    // Odd node promoted unchanged.
                    next.push(prev[i]);
                    i += 1;
                }
            }
            levels.push(next);
        }
        Some(Self { levels })
    }

    /// The root hash.
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True when the tree has exactly one leaf.
    pub fn is_empty(&self) -> bool {
        false // Construction guarantees at least one leaf.
    }

    /// Produces an inclusion proof for leaf `index`, or `None` when the
    /// index is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                let right = sibling_idx > idx;
                siblings.push((level[sibling_idx], right));
            }
            // If no sibling (odd promoted node), nothing is recorded and
            // the hash passes through unchanged — mirrored in verify.
            idx /= 2;
        }
        Some(MerkleProof { index, siblings })
    }

    /// Verifies that `chunk` is the leaf at `proof.index` under `root`.
    pub fn verify(root: &[u8; 32], chunk: &[u8], proof: &MerkleProof) -> bool {
        let mut hash = hash_leaf(chunk);
        for (sibling, right) in &proof.siblings {
            hash = if *right {
                hash_node(&hash, sibling)
            } else {
                hash_node(sibling, &hash)
            };
        }
        hash == *root
    }
}

/// Convenience: hashes a whole data module into a root directly.
pub fn merkle_root<T: AsRef<[u8]>>(chunks: &[T]) -> Option<[u8; 32]> {
    MerkleTree::build(chunks).map(|t| t.root())
}

/// One-shot content hash for non-chunked integrity protection.
pub fn content_hash(data: &[u8]) -> [u8; 32] {
    sha256(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("chunk-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_input_has_no_tree() {
        assert!(MerkleTree::build::<Vec<u8>>(&[]).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::build(&chunks(1)).unwrap();
        assert_eq!(t.root(), hash_leaf(b"chunk-0"));
        let p = t.prove(0).unwrap();
        assert!(p.siblings.is_empty());
        assert!(MerkleTree::verify(&t.root(), b"chunk-0", &p));
    }

    #[test]
    fn all_proofs_verify_various_sizes() {
        for n in [1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33] {
            let cs = chunks(n);
            let t = MerkleTree::build(&cs).unwrap();
            for (i, c) in cs.iter().enumerate() {
                let p = t.prove(i).unwrap();
                assert!(MerkleTree::verify(&t.root(), c, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn tampered_chunk_fails() {
        let cs = chunks(8);
        let t = MerkleTree::build(&cs).unwrap();
        let p = t.prove(3).unwrap();
        assert!(!MerkleTree::verify(&t.root(), b"chunk-EVIL", &p));
    }

    #[test]
    fn wrong_index_proof_fails() {
        let cs = chunks(8);
        let t = MerkleTree::build(&cs).unwrap();
        let p = t.prove(3).unwrap();
        assert!(!MerkleTree::verify(&t.root(), b"chunk-4", &p));
    }

    #[test]
    fn tampered_sibling_fails() {
        let cs = chunks(4);
        let t = MerkleTree::build(&cs).unwrap();
        let mut p = t.prove(0).unwrap();
        p.siblings[0].0[0] ^= 1;
        assert!(!MerkleTree::verify(&t.root(), b"chunk-0", &p));
    }

    #[test]
    fn out_of_range_proof_none() {
        let t = MerkleTree::build(&chunks(4)).unwrap();
        assert!(t.prove(4).is_none());
    }

    #[test]
    fn root_changes_with_content_and_order() {
        let r1 = merkle_root(&chunks(4)).unwrap();
        let mut swapped = chunks(4);
        swapped.swap(0, 1);
        let r2 = merkle_root(&swapped).unwrap();
        assert_ne!(r1, r2);
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A single chunk equal to an interior-node preimage must not
        // produce that interior hash.
        let cs = chunks(2);
        let t = MerkleTree::build(&cs).unwrap();
        let forged: Vec<u8> = {
            let l0 = hash_leaf(b"chunk-0");
            let l1 = hash_leaf(b"chunk-1");
            let mut v = Vec::new();
            v.extend_from_slice(&l0);
            v.extend_from_slice(&l1);
            v
        };
        assert_ne!(hash_leaf(&forged), t.root());
    }

    #[test]
    fn proof_serde_round_trip() {
        let t = MerkleTree::build(&chunks(5)).unwrap();
        let p = t.prove(2).unwrap();
        let js = serde_json::to_string(&p).unwrap();
        let back: MerkleProof = serde_json::from_str(&js).unwrap();
        assert_eq!(back, p);
    }
}
