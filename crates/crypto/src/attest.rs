//! Remote attestation (§4 of the paper).
//!
//! "UDC must enable users to verify that the cloud vendor is correctly
//! providing their selected features. ... We believe this can be achieved
//! through comprehensive remote attestation primitives, similar to the
//! ones available in TEEs today. ... However, many features that UDC
//! allows users to define cannot be verified with today's remote
//! attestation primitives (e.g., whether or not resources were provided
//! as specified)."
//!
//! This module implements exactly that extension: quotes carry both a
//! classic *measurement* chain (software identity, PCR-extend semantics)
//! and a set of **claims** about fulfilled UDC aspects (isolation level,
//! tenancy, provided resources), all signed by a simulated hardware root
//! of trust. The verifier trusts only the hardware key, not the
//! provider's software stack.
//!
//! The signature is `HMAC-SHA256(device_key, quote-body)`; the verifier
//! holds the per-device verification key, simulating the manufacturer
//! certificate chain of real TEEs (see DESIGN.md substitution table).

use crate::hmac::{hmac_sha256, verify_tag};
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A PCR-like measurement register with extend semantics:
/// `new = SHA256(old || event)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementRegister {
    value: [u8; 32],
    log: Vec<String>,
}

impl Default for MeasurementRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasurementRegister {
    /// Creates a register initialized to all zeros.
    pub fn new() -> Self {
        Self {
            value: [0u8; 32],
            log: Vec::new(),
        }
    }

    /// Extends the register with an event (e.g. "loaded module A2 code
    /// hash ...") and records it in the event log.
    pub fn extend(&mut self, event: &str) {
        let mut h = Sha256::new();
        h.update(&self.value);
        h.update(event.as_bytes());
        self.value = h.finalize();
        self.log.push(event.to_string());
    }

    /// Current register value.
    pub fn value(&self) -> [u8; 32] {
        self.value
    }

    /// The event log (needed by verifiers to replay the chain).
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Replays an event log from scratch and returns the final value —
    /// what a verifier computes to check a quote against an expected
    /// software stack.
    pub fn replay(events: &[String]) -> [u8; 32] {
        let mut r = MeasurementRegister::new();
        for e in events {
            r.extend(e);
        }
        r.value()
    }
}

/// A signed attestation quote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// Identifier of the attesting device.
    pub device_id: String,
    /// Final measurement-register value.
    pub measurement: [u8; 32],
    /// The measurement event log.
    pub event_log: Vec<String>,
    /// Verifier-supplied nonce, proving freshness.
    pub nonce: [u8; 32],
    /// UDC aspect-fulfillment claims (the paper's extension beyond
    /// today's primitives), e.g. `isolation -> strongest`,
    /// `resources.cpu -> 4`.
    pub claims: BTreeMap<String, String>,
    /// HMAC signature by the device key over everything above.
    pub signature: [u8; 32],
}

fn quote_body(
    device_id: &str,
    measurement: &[u8; 32],
    event_log: &[String],
    nonce: &[u8; 32],
    claims: &BTreeMap<String, String>,
) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(device_id.as_bytes());
    body.push(0);
    body.extend_from_slice(measurement);
    body.extend_from_slice(&(event_log.len() as u64).to_be_bytes());
    for e in event_log {
        body.extend_from_slice(&(e.len() as u64).to_be_bytes());
        body.extend_from_slice(e.as_bytes());
    }
    body.extend_from_slice(nonce);
    for (k, v) in claims {
        body.extend_from_slice(&(k.len() as u64).to_be_bytes());
        body.extend_from_slice(k.as_bytes());
        body.extend_from_slice(&(v.len() as u64).to_be_bytes());
        body.extend_from_slice(v.as_bytes());
    }
    body
}

/// The simulated hardware root of trust inside one device.
///
/// Holds the fused device key (never exported) and the measurement
/// register. The provider's software can ask it to extend measurements
/// and produce quotes but cannot forge signatures for states the
/// hardware did not observe.
#[derive(Debug, Clone)]
pub struct RootOfTrust {
    device_id: String,
    key: [u8; 32],
    register: MeasurementRegister,
}

impl RootOfTrust {
    /// "Fuses" a new root of trust with the given device id and key.
    pub fn new(device_id: impl Into<String>, key: [u8; 32]) -> Self {
        Self {
            device_id: device_id.into(),
            key,
            register: MeasurementRegister::new(),
        }
    }

    /// Device identifier.
    pub fn device_id(&self) -> &str {
        &self.device_id
    }

    /// Extends the measurement register (called when code/config is
    /// loaded into the environment).
    pub fn measure(&mut self, event: &str) {
        self.register.extend(event);
    }

    /// Current measurement.
    pub fn measurement(&self) -> [u8; 32] {
        self.register.value()
    }

    /// Produces a quote over the current measurement plus UDC claims,
    /// bound to the verifier's `nonce`.
    pub fn quote(&self, nonce: [u8; 32], claims: BTreeMap<String, String>) -> Quote {
        let measurement = self.register.value();
        let event_log = self.register.log().to_vec();
        let body = quote_body(&self.device_id, &measurement, &event_log, &nonce, &claims);
        let signature = hmac_sha256(&self.key, &body);
        Quote {
            device_id: self.device_id.clone(),
            measurement,
            event_log,
            nonce,
            claims,
            signature,
        }
    }

    /// Resets the measurement register (device reprovisioning).
    pub fn reset(&mut self) {
        self.register = MeasurementRegister::new();
    }
}

/// Attestation failures, ordered by how early in verification they occur.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestError {
    /// The verifier has no key for this device (unknown hardware).
    UnknownDevice(String),
    /// The signature did not verify: quote forged or tampered.
    BadSignature,
    /// The nonce does not match the challenge: stale or replayed quote.
    StaleNonce,
    /// The event log does not replay to the quoted measurement.
    InconsistentLog,
    /// The measurement differs from the policy's expectation: wrong or
    /// modified software stack.
    WrongMeasurement {
        /// What the policy expected.
        expected: [u8; 32],
        /// What the quote contained.
        actual: [u8; 32],
    },
    /// A required claim is missing or has the wrong value: an aspect the
    /// user defined was not fulfilled as specified.
    ClaimMismatch {
        /// Claim key.
        key: String,
        /// Required value.
        required: String,
        /// Value found in the quote (None = absent).
        found: Option<String>,
    },
}

impl fmt::Display for AttestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestError::UnknownDevice(d) => write!(f, "unknown device `{d}`"),
            AttestError::BadSignature => f.write_str("quote signature invalid"),
            AttestError::StaleNonce => f.write_str("quote nonce stale or replayed"),
            AttestError::InconsistentLog => {
                f.write_str("event log does not replay to quoted measurement")
            }
            AttestError::WrongMeasurement { .. } => {
                f.write_str("measurement does not match expected software stack")
            }
            AttestError::ClaimMismatch {
                key,
                required,
                found,
            } => write!(
                f,
                "claim `{key}` mismatch: required `{required}`, found {found:?}"
            ),
        }
    }
}

impl std::error::Error for AttestError {}

/// What a user requires a quote to demonstrate.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationPolicy {
    /// Expected final measurement (None = any software stack accepted,
    /// only claims are checked).
    pub expected_measurement: Option<[u8; 32]>,
    /// Claims that must be present with exactly these values.
    pub required_claims: BTreeMap<String, String>,
}

impl AttestationPolicy {
    /// Policy requiring a specific measurement.
    pub fn measurement(m: [u8; 32]) -> Self {
        Self {
            expected_measurement: Some(m),
            required_claims: BTreeMap::new(),
        }
    }

    /// Builder-style: adds a required claim.
    pub fn require(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.required_claims.insert(key.into(), value.into());
        self
    }
}

/// User-side verifier holding trusted device keys.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    device_keys: BTreeMap<String, [u8; 32]>,
}

impl Verifier {
    /// Creates an empty verifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a trusted device verification key (simulating the
    /// hardware manufacturer's certificate chain).
    pub fn trust_device(&mut self, device_id: impl Into<String>, key: [u8; 32]) {
        self.device_keys.insert(device_id.into(), key);
    }

    /// Verifies a quote against a challenge nonce and a policy.
    ///
    /// Checks, in order: device known → signature valid → nonce fresh →
    /// event log consistent → measurement as expected → claims satisfied.
    pub fn verify(
        &self,
        quote: &Quote,
        challenge_nonce: &[u8; 32],
        policy: &AttestationPolicy,
    ) -> Result<(), AttestError> {
        let key = self
            .device_keys
            .get(&quote.device_id)
            .ok_or_else(|| AttestError::UnknownDevice(quote.device_id.clone()))?;
        let body = quote_body(
            &quote.device_id,
            &quote.measurement,
            &quote.event_log,
            &quote.nonce,
            &quote.claims,
        );
        let expected_sig = hmac_sha256(key, &body);
        if !verify_tag(&expected_sig, &quote.signature) {
            return Err(AttestError::BadSignature);
        }
        if &quote.nonce != challenge_nonce {
            return Err(AttestError::StaleNonce);
        }
        if MeasurementRegister::replay(&quote.event_log) != quote.measurement {
            return Err(AttestError::InconsistentLog);
        }
        if let Some(expected) = policy.expected_measurement {
            if expected != quote.measurement {
                return Err(AttestError::WrongMeasurement {
                    expected,
                    actual: quote.measurement,
                });
            }
        }
        for (k, required) in &policy.required_claims {
            match quote.claims.get(k) {
                Some(v) if v == required => {}
                found => {
                    return Err(AttestError::ClaimMismatch {
                        key: k.clone(),
                        required: required.clone(),
                        found: found.cloned(),
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RootOfTrust, Verifier) {
        let key = [0x42u8; 32];
        let rot = RootOfTrust::new("dev0", key);
        let mut v = Verifier::new();
        v.trust_device("dev0", key);
        (rot, v)
    }

    fn claims(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn honest_quote_verifies() {
        let (mut rot, v) = setup();
        rot.measure("boot: udc-runtime v1");
        rot.measure("load: module A2");
        let nonce = [7u8; 32];
        let q = rot.quote(nonce, claims(&[("isolation", "strongest")]));
        let policy =
            AttestationPolicy::measurement(rot.measurement()).require("isolation", "strongest");
        v.verify(&q, &nonce, &policy).unwrap();
    }

    #[test]
    fn forged_signature_rejected() {
        let (mut rot, v) = setup();
        rot.measure("boot");
        let nonce = [1u8; 32];
        let mut q = rot.quote(nonce, claims(&[]));
        q.signature[0] ^= 1;
        assert_eq!(
            v.verify(&q, &nonce, &AttestationPolicy::default()),
            Err(AttestError::BadSignature)
        );
    }

    #[test]
    fn tampered_claims_break_signature() {
        let (mut rot, v) = setup();
        rot.measure("boot");
        let nonce = [1u8; 32];
        let mut q = rot.quote(nonce, claims(&[("tenancy", "shared")]));
        // Provider edits the claim after signing.
        q.claims.insert("tenancy".into(), "single_tenant".into());
        assert_eq!(
            v.verify(&q, &nonce, &AttestationPolicy::default()),
            Err(AttestError::BadSignature)
        );
    }

    #[test]
    fn stale_nonce_rejected() {
        let (mut rot, v) = setup();
        rot.measure("boot");
        let q = rot.quote([1u8; 32], claims(&[]));
        assert_eq!(
            v.verify(&q, &[2u8; 32], &AttestationPolicy::default()),
            Err(AttestError::StaleNonce)
        );
    }

    #[test]
    fn unknown_device_rejected() {
        let key = [9u8; 32];
        let mut rot = RootOfTrust::new("rogue", key);
        rot.measure("boot");
        let v = Verifier::new();
        let nonce = [0u8; 32];
        let q = rot.quote(nonce, claims(&[]));
        assert!(matches!(
            v.verify(&q, &nonce, &AttestationPolicy::default()),
            Err(AttestError::UnknownDevice(_))
        ));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (mut rot, v) = setup();
        rot.measure("boot: evil runtime");
        let nonce = [3u8; 32];
        let q = rot.quote(nonce, claims(&[]));
        let expected = MeasurementRegister::replay(&["boot: udc-runtime v1".to_string()]);
        let policy = AttestationPolicy::measurement(expected);
        assert!(matches!(
            v.verify(&q, &nonce, &policy),
            Err(AttestError::WrongMeasurement { .. })
        ));
    }

    #[test]
    fn missing_claim_rejected() {
        let (mut rot, v) = setup();
        rot.measure("boot");
        let nonce = [4u8; 32];
        let q = rot.quote(nonce, claims(&[]));
        let policy = AttestationPolicy::default().require("resources.gpu", "1");
        assert!(matches!(
            v.verify(&q, &nonce, &policy),
            Err(AttestError::ClaimMismatch { .. })
        ));
    }

    #[test]
    fn wrong_claim_value_rejected() {
        let (mut rot, v) = setup();
        rot.measure("boot");
        let nonce = [5u8; 32];
        let q = rot.quote(nonce, claims(&[("resources.cpu", "2")]));
        let policy = AttestationPolicy::default().require("resources.cpu", "4");
        match v.verify(&q, &nonce, &policy) {
            Err(AttestError::ClaimMismatch { found, .. }) => {
                assert_eq!(found, Some("2".to_string()));
            }
            other => panic!("expected claim mismatch, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_log_rejected() {
        let (mut rot, v) = setup();
        rot.measure("boot");
        let nonce = [6u8; 32];
        let mut q = rot.quote(nonce, claims(&[]));
        // Signature covers the log, so tamper with both consistently is
        // impossible without the key; here we only check the replay gate
        // by re-signing with the real key is unavailable — mutate log and
        // expect BadSignature (covers the log), so instead verify replay
        // detection directly.
        q.event_log.push("load: extra".into());
        let res = v.verify(&q, &nonce, &AttestationPolicy::default());
        assert!(res == Err(AttestError::BadSignature) || res == Err(AttestError::InconsistentLog));
    }

    #[test]
    fn measurement_register_order_sensitive() {
        let a = MeasurementRegister::replay(&["x".into(), "y".into()]);
        let b = MeasurementRegister::replay(&["y".into(), "x".into()]);
        assert_ne!(a, b);
    }

    #[test]
    fn register_reset_clears_state() {
        let mut rot = RootOfTrust::new("d", [0u8; 32]);
        rot.measure("boot");
        assert_ne!(rot.measurement(), [0u8; 32]);
        rot.reset();
        assert_eq!(rot.measurement(), MeasurementRegister::new().value());
    }

    #[test]
    fn quote_serde_round_trip() {
        let (mut rot, _) = setup();
        rot.measure("boot");
        let q = rot.quote([8u8; 32], claims(&[("a", "b")]));
        let js = serde_json::to_string(&q).unwrap();
        let back: Quote = serde_json::from_str(&js).unwrap();
        assert_eq!(back, q);
    }
}
