//! A realistic mixture of tenant resource demands (experiment E3).
//!
//! The population mirrors public-cloud usage studies: mostly small web/
//! API services, a batch tier, a memory-heavy tier, and an ML tier whose
//! GPU jobs need few CPUs — the exact shape §1's p3.16xlarge example
//! complains about.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use udc_spec::{ResourceKind, ResourceVector};

/// Demand classes in the mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DemandClass {
    /// Small web/API service: 1–4 vCPU, 1–8 GiB.
    Web,
    /// Batch compute: 4–32 vCPU, 8–64 GiB.
    Batch,
    /// Memory-heavy: 2–8 vCPU, 32–256 GiB.
    MemoryHeavy,
    /// ML training/inference: 1–8 GPUs, 2–8 vCPU of orchestration.
    Ml,
    /// Storage-heavy: 100–1800 GiB SSD, 2–8 vCPU.
    StorageHeavy,
}

impl DemandClass {
    /// Mixture weights (sum to 100).
    pub fn weight(self) -> u32 {
        match self {
            DemandClass::Web => 45,
            DemandClass::Batch => 20,
            DemandClass::MemoryHeavy => 12,
            DemandClass::Ml => 13,
            DemandClass::StorageHeavy => 10,
        }
    }

    const ALL: [DemandClass; 5] = [
        DemandClass::Web,
        DemandClass::Batch,
        DemandClass::MemoryHeavy,
        DemandClass::Ml,
        DemandClass::StorageHeavy,
    ];
}

/// Seeded sampler over the demand mixture.
#[derive(Debug)]
pub struct DemandSampler {
    rng: StdRng,
}

impl DemandSampler {
    /// Creates a sampler.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a class according to the mixture weights.
    pub fn sample_class(&mut self) -> DemandClass {
        let total: u32 = DemandClass::ALL.iter().map(|c| c.weight()).sum();
        let mut roll = self.rng.gen_range(0..total);
        for c in DemandClass::ALL {
            if roll < c.weight() {
                return c;
            }
            roll -= c.weight();
        }
        DemandClass::Web
    }

    /// Samples one demand vector.
    pub fn sample(&mut self) -> (DemandClass, ResourceVector) {
        let class = self.sample_class();
        let v = self.sample_of(class);
        (class, v)
    }

    /// Samples a demand of a specific class.
    pub fn sample_of(&mut self, class: DemandClass) -> ResourceVector {
        let gib = 1024u64;
        match class {
            DemandClass::Web => ResourceVector::new()
                .with(ResourceKind::Cpu, self.rng.gen_range(1..=4))
                .with(ResourceKind::Dram, self.rng.gen_range(1..=8) * gib),
            DemandClass::Batch => ResourceVector::new()
                .with(ResourceKind::Cpu, self.rng.gen_range(4..=32))
                .with(ResourceKind::Dram, self.rng.gen_range(8..=64) * gib),
            DemandClass::MemoryHeavy => ResourceVector::new()
                .with(ResourceKind::Cpu, self.rng.gen_range(2..=8))
                .with(ResourceKind::Dram, self.rng.gen_range(32..=256) * gib),
            DemandClass::Ml => ResourceVector::new()
                .with(ResourceKind::Gpu, self.rng.gen_range(1..=8))
                .with(ResourceKind::Cpu, self.rng.gen_range(2..=8))
                .with(ResourceKind::Dram, self.rng.gen_range(16..=128) * gib),
            DemandClass::StorageHeavy => ResourceVector::new()
                .with(ResourceKind::Cpu, self.rng.gen_range(2..=8))
                .with(ResourceKind::Dram, self.rng.gen_range(4..=32) * gib)
                .with(ResourceKind::Ssd, self.rng.gen_range(100..=1800) * gib),
        }
    }

    /// Samples `n` demands.
    pub fn sample_n(&mut self, n: usize) -> Vec<ResourceVector> {
        (0..n).map(|_| self.sample().1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = DemandSampler::new(7).sample_n(50);
        let b = DemandSampler::new(7).sample_n(50);
        assert_eq!(a, b);
    }

    #[test]
    fn mixture_roughly_matches_weights() {
        let mut s = DemandSampler::new(1);
        let mut web = 0;
        let n = 2_000;
        for _ in 0..n {
            if s.sample_class() == DemandClass::Web {
                web += 1;
            }
        }
        let frac = web as f64 / n as f64;
        assert!(frac > 0.38 && frac < 0.52, "web fraction {frac}");
    }

    #[test]
    fn ml_demands_have_gpus_few_cpus() {
        let mut s = DemandSampler::new(2);
        for _ in 0..100 {
            let v = s.sample_of(DemandClass::Ml);
            assert!(v.get(ResourceKind::Gpu) >= 1);
            assert!(v.get(ResourceKind::Cpu) <= 8, "orchestration CPUs only");
        }
    }

    #[test]
    fn demands_nonzero() {
        let mut s = DemandSampler::new(3);
        for v in s.sample_n(200) {
            assert!(!v.is_zero());
        }
    }
}
