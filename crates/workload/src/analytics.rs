//! A batch-analytics fan-out: `split → map×N → reduce` over a cheap
//! replicated dataset — the "occasionally performing analytics" side of
//! the paper's hospital example, generalized.

use udc_spec::prelude::*;

/// Builds a map/reduce job with `mappers` parallel map tasks.
pub fn analytics_fanout(mappers: u32) -> AppSpec {
    let mappers = mappers.max(1);
    let mut app = AppSpec::new("analytics");
    app.add_data(
        DataSpec::new("dataset")
            .describe("input dataset")
            .with_resource(ResourceAspect::goal(Goal::Cheapest))
            .with_exec_env(ExecEnvAspect::default().with_protection(DataProtection::INTEGRITY_ONLY))
            .with_dist(DistributedAspect::default().replication(2))
            .with_bytes(4 << 30),
    );
    app.add_data(
        DataSpec::new("results")
            .describe("output")
            .with_resource(ResourceAspect::goal(Goal::Cheapest))
            .with_bytes(64 << 20),
    );
    app.add_task(
        TaskSpec::new("split")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 1))
            .with_work(20),
    );
    for i in 0..mappers {
        let name = format!("map{i}");
        app.add_task(
            TaskSpec::new(&name)
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 4))
                .with_dist(DistributedAspect::default().failure(FailureHandling::Reexecute))
                .with_work(1_000)
                .with_bytes(128 << 20),
        );
        app.add_edge("split", &name, EdgeKind::Dependency).unwrap();
        app.add_access_with(&name, "dataset", None, None).unwrap();
    }
    app.add_task(
        TaskSpec::new("reduce")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 8))
            .with_dist(
                DistributedAspect::default()
                    .failure(FailureHandling::Checkpoint { interval_ms: 5_000 }),
            )
            .with_work(500),
    );
    for i in 0..mappers {
        app.add_edge(&format!("map{i}"), "reduce", EdgeKind::Dependency)
            .unwrap();
    }
    app.add_access_with("reduce", "results", None, None)
        .unwrap();
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_valid_and_sized() {
        let app = analytics_fanout(8);
        app.validate().unwrap();
        assert_eq!(app.tasks().count(), 10, "split + 8 maps + reduce");
    }

    #[test]
    fn reduce_waits_for_all_mappers() {
        let app = analytics_fanout(4);
        let order = app.topo_order().unwrap();
        let pos = |n: &str| order.iter().position(|m| m.as_str() == n).unwrap();
        for i in 0..4 {
            assert!(pos(&format!("map{i}")) < pos("reduce"));
        }
    }

    #[test]
    fn single_mapper_minimum() {
        assert!(analytics_fanout(0).validate().is_ok());
    }
}
