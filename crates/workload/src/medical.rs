//! The paper's motivating example: medical information processing
//! (Fig. 2) with the exact user definitions of Table 1.
//!
//! "A hospital wants to use the cloud to perform three tasks: securely
//! storing patients' medical records, securely and quickly diagnosing
//! patients' medical images, and occasionally performing analytics over
//! anonymized patient data."

use udc_spec::prelude::*;

/// Builds the medical pipeline.
///
/// Modules (Fig. 2) and aspects (Table 1):
///
/// | Module | Resource | Exec env & security | Distributed |
/// |---|---|---|---|
/// | A1 preprocess | Fastest | single-tenant (or SGX if CPU) | no replication |
/// | A2 CNN inference | GPU | single-tenant | no rep, checkpoint |
/// | A3 NLP inference | GPU | single-tenant | no rep, checkpoint |
/// | A4 diagnosing | CPU | single-tenant & SGX | rep 2×, checkpoint |
/// | B1 anonymizing | Cheapest | single-tenant (or SGX if CPU) | no replication |
/// | B2 analytics | Cheapest | containers | no rep, checkpoint |
/// | S1 medical records | SSD | encryption & integrity | rep 3×, sequential |
/// | S2 consent forms | Cheapest | encryption & integrity | rep 2×, reader pref |
/// | S3 medical image | DRAM | encryption & integrity | rep 2× |
/// | S4 anonymized data | Cheapest | integrity | no rep, release |
pub fn medical_pipeline() -> AppSpec {
    let mut app = AppSpec::new("medical");

    // --- Data modules (S1–S4) ---
    app.add_data(
        DataSpec::new("S1")
            .describe("patient medical records")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Ssd, 1024 * 1024))
            .with_exec_env(
                ExecEnvAspect::default().with_protection(DataProtection::ENCRYPT_AND_INTEGRITY),
            )
            .with_dist(
                DistributedAspect::default()
                    .replication(3)
                    .consistency(ConsistencyLevel::Sequential),
            )
            .with_bytes(1 << 30),
    );
    app.add_data(
        DataSpec::new("S2")
            .describe("patient consent forms")
            .with_resource(ResourceAspect::goal(Goal::Cheapest))
            .with_exec_env(
                ExecEnvAspect::default().with_protection(DataProtection::ENCRYPT_AND_INTEGRITY),
            )
            .with_dist(
                DistributedAspect::default()
                    .replication(2)
                    .preference(OpPreference::Reader),
            )
            .with_bytes(64 << 20),
    );
    app.add_data(
        DataSpec::new("S3")
            .describe("medical image, generated at real time")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Dram, 16))
            .with_exec_env(
                ExecEnvAspect::default().with_protection(DataProtection::ENCRYPT_AND_INTEGRITY),
            )
            .with_dist(DistributedAspect::default().replication(2))
            .with_bytes(16 << 20),
    );
    app.add_data(
        DataSpec::new("S4")
            .describe("anonymized records/images")
            .with_resource(ResourceAspect::goal(Goal::Cheapest))
            .with_exec_env(ExecEnvAspect::default().with_protection(DataProtection::INTEGRITY_ONLY))
            .with_dist(DistributedAspect::default().consistency(ConsistencyLevel::Release))
            .with_bytes(256 << 20),
    );

    // --- Diagnosis path (A1–A4) ---
    app.add_task(
        TaskSpec::new("A1")
            .describe("preprocessing: resize and greyscale")
            .with_resource(ResourceAspect::goal(Goal::Fastest))
            .with_exec_env(
                ExecEnvAspect::isolation(IsolationLevel::Strong)
                    .with_tenancy(Tenancy::SingleTenant)
                    .with_tee_if_cpu(),
            )
            .with_work(50)
            .with_bytes(16 << 20),
    );
    app.add_task(
        TaskSpec::new("A2")
            .describe("object detection: CNN inference")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Gpu, 1))
            .with_exec_env(
                ExecEnvAspect::isolation(IsolationLevel::Strong)
                    .with_tenancy(Tenancy::SingleTenant),
            )
            .with_dist(
                DistributedAspect::default()
                    .failure(FailureHandling::Checkpoint { interval_ms: 1_000 }),
            )
            .with_work(5_000)
            .with_bytes(4 << 20),
    );
    app.add_task(
        TaskSpec::new("A3")
            .describe("medical-record NLP: BERT inference")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Gpu, 1))
            .with_exec_env(
                ExecEnvAspect::isolation(IsolationLevel::Strong)
                    .with_tenancy(Tenancy::SingleTenant),
            )
            .with_dist(
                DistributedAspect::default()
                    .failure(FailureHandling::Checkpoint { interval_ms: 1_000 }),
            )
            .with_work(8_000)
            .with_bytes(1 << 20),
    );
    app.add_task(
        TaskSpec::new("A4")
            .describe("automated diagnosis")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
            .with_exec_env(
                ExecEnvAspect::isolation(IsolationLevel::Strongest)
                    .with_tenancy(Tenancy::SingleTenant)
                    .with_tee_if_cpu(),
            )
            .with_dist(
                DistributedAspect::default()
                    .replication(2)
                    .failure(FailureHandling::Checkpoint { interval_ms: 500 }),
            )
            .with_work(200)
            .with_bytes(1 << 20),
    );

    // --- Analytics path (B1–B2) ---
    app.add_task(
        TaskSpec::new("B1")
            .describe("consent filtering and anonymizing")
            .with_resource(ResourceAspect::goal(Goal::Cheapest))
            .with_exec_env(
                ExecEnvAspect::isolation(IsolationLevel::Strong)
                    .with_tenancy(Tenancy::SingleTenant)
                    .with_tee_if_cpu(),
            )
            .with_work(300)
            .with_bytes(256 << 20),
    );
    app.add_task(
        TaskSpec::new("B2")
            .describe("third-party analytics framework")
            .with_resource(ResourceAspect::goal(Goal::Cheapest))
            .with_exec_env(ExecEnvAspect::isolation(IsolationLevel::Weak))
            .with_dist(
                DistributedAspect::default().failure(FailureHandling::Checkpoint {
                    interval_ms: 10_000,
                }),
            )
            .with_work(2_000)
            .with_bytes(64 << 20),
    );

    // --- Data flow (arrows of Fig. 2) ---
    app.add_edge("A1", "A2", EdgeKind::Dependency).unwrap();
    app.add_edge("A2", "A4", EdgeKind::Dependency).unwrap();
    app.add_edge("A3", "A4", EdgeKind::Dependency).unwrap();
    app.add_access_with("A1", "S3", None, None).unwrap();
    app.add_access_with("A3", "S1", Some(ConsistencyLevel::Sequential), None)
        .unwrap();
    app.add_access_with("A4", "S1", Some(ConsistencyLevel::Sequential), None)
        .unwrap();
    app.add_access_with("B1", "S2", None, None).unwrap();
    app.add_access_with("B1", "S1", Some(ConsistencyLevel::Sequential), None)
        .unwrap();
    app.add_access_with("B1", "S4", None, None).unwrap();
    app.add_access_with("B2", "S4", Some(ConsistencyLevel::Release), None)
        .unwrap();

    // --- Locality hints (§3.1's examples: A1+A2 together, S1 near A3) ---
    app.colocate("A1", "A2").unwrap();
    app.affinity("A3", "S1").unwrap();

    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_spec::conflict::detect_conflicts;

    #[test]
    fn pipeline_is_valid() {
        let app = medical_pipeline();
        app.validate().unwrap();
        assert_eq!(app.len(), 10, "A1-A4, B1-B2, S1-S4");
        assert_eq!(app.tasks().count(), 6);
        assert_eq!(app.data().count(), 4);
    }

    #[test]
    fn pipeline_is_conflict_free() {
        let report = detect_conflicts(&medical_pipeline());
        assert!(report.is_clean(), "{:?}", report.conflicts);
    }

    #[test]
    fn table1_aspects_encoded() {
        let app = medical_pipeline();
        let s1 = app.module(&"S1".into()).unwrap();
        assert_eq!(s1.dist.replication, 3);
        assert_eq!(s1.dist.consistency, Some(ConsistencyLevel::Sequential));
        assert_eq!(
            s1.exec_env.protection,
            Some(DataProtection::ENCRYPT_AND_INTEGRITY)
        );
        let s2 = app.module(&"S2".into()).unwrap();
        assert_eq!(s2.dist.preference, OpPreference::Reader);
        assert_eq!(s2.dist.replication, 2);
        let s4 = app.module(&"S4".into()).unwrap();
        assert_eq!(s4.dist.replication, 1);
        assert_eq!(s4.exec_env.protection, Some(DataProtection::INTEGRITY_ONLY));
        let a4 = app.module(&"A4".into()).unwrap();
        assert_eq!(a4.exec_env.isolation, Some(IsolationLevel::Strongest));
        assert_eq!(a4.dist.replication, 2);
        let b2 = app.module(&"B2".into()).unwrap();
        assert_eq!(b2.exec_env.isolation, Some(IsolationLevel::Weak));
    }

    #[test]
    fn diagnosis_path_ordering() {
        let app = medical_pipeline();
        let order = app.topo_order().unwrap();
        let pos = |name: &str| order.iter().position(|m| m.as_str() == name).unwrap();
        assert!(pos("A1") < pos("A2"));
        assert!(pos("A2") < pos("A4"));
        assert!(pos("A3") < pos("A4"));
    }

    #[test]
    fn locality_hints_present() {
        let app = medical_pipeline();
        assert_eq!(app.hints.len(), 2);
    }

    #[test]
    fn round_trips_through_text_format() {
        let app = medical_pipeline();
        let text = udc_spec::print_app(&app);
        let back = udc_spec::parse_app(&text).unwrap();
        assert_eq!(back, app);
    }
}
