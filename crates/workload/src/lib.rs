//! # udc-workload — workload generators for the UDC experiments
//!
//! - [`medical::medical_pipeline`] — the paper's own motivating example
//!   (Fig. 2) with the exact user definitions of Table 1;
//! - [`mlserving::ml_serving_chain`] — event-triggered ML inference, the
//!   §1 workload serverless cannot serve (GPU + FaaS);
//! - [`analytics::analytics_fanout`] — a map/reduce batch job;
//! - [`microservice::microservice_chain`] — a latency-sensitive RPC
//!   chain;
//! - [`random_dag::RandomDagConfig`] — seeded random DAGs with optional
//!   seeded aspect conflicts (experiment E10);
//! - [`demand::DemandSampler`] — a realistic mixture of module resource
//!   demands (experiment E3's 2 000-tenant population);
//! - [`arrivals`] — Poisson and bursty arrival processes.

pub mod analytics;
pub mod arrivals;
pub mod demand;
pub mod medical;
pub mod microservice;
pub mod mlserving;
pub mod random_dag;

pub use analytics::analytics_fanout;
pub use arrivals::{bursty_arrivals, poisson_arrivals};
pub use demand::{DemandClass, DemandSampler};
pub use medical::medical_pipeline;
pub use microservice::microservice_chain;
pub use mlserving::ml_serving_chain;
pub use random_dag::{random_app, RandomDagConfig};
