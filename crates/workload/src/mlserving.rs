//! Event-triggered ML inference serving — §1's example of a workload
//! today's clouds cannot host well: "many ML inference tasks are
//! event-triggered and could benefit from serverless computing and GPU
//! acceleration. Despite the high demand for such applications, no cloud
//! provider has yet supported GPU in their serverless computing
//! offerings."

use udc_spec::prelude::*;

/// Builds an inference-serving chain: `ingest → preprocess → infer(GPU)
/// → postprocess`, with a DRAM-resident model-weights data module that
/// the inference stage has affinity to.
///
/// `replicas` fans the GPU inference stage out (e.g. one per active
/// model shard).
pub fn ml_serving_chain(replicas: u32) -> AppSpec {
    let mut app = AppSpec::new("ml-serving");
    app.add_data(
        DataSpec::new("weights")
            .describe("model weights, memory-resident")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Dram, 8 * 1024))
            .with_exec_env(ExecEnvAspect::default().with_protection(DataProtection::INTEGRITY_ONLY))
            .with_dist(DistributedAspect::default().replication(replicas.max(1)))
            .with_bytes(8 << 30),
    );
    app.add_task(
        TaskSpec::new("ingest")
            .describe("event ingestion")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 1))
            .with_work(10)
            .with_bytes(1 << 20),
    );
    app.add_task(
        TaskSpec::new("preprocess")
            .describe("feature extraction")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
            .with_work(40)
            .with_bytes(1 << 20),
    );
    app.add_task(
        TaskSpec::new("infer")
            .describe("GPU inference")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Gpu, 1))
            .with_dist(DistributedAspect::default().failure(FailureHandling::Reexecute))
            .with_work(2_000)
            .with_bytes(1 << 20),
    );
    app.add_task(
        TaskSpec::new("postprocess")
            .describe("result shaping")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 1))
            .with_work(10)
            .with_bytes(64 << 10),
    );
    app.add_edge("ingest", "preprocess", EdgeKind::Dependency)
        .unwrap();
    app.add_edge("preprocess", "infer", EdgeKind::Dependency)
        .unwrap();
    app.add_edge("infer", "postprocess", EdgeKind::Dependency)
        .unwrap();
    app.add_access_with("infer", "weights", None, None).unwrap();
    app.affinity("infer", "weights").unwrap();
    app.colocate("ingest", "preprocess").unwrap();
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_valid() {
        let app = ml_serving_chain(2);
        app.validate().unwrap();
        assert_eq!(app.tasks().count(), 4);
        assert_eq!(app.data().count(), 1);
    }

    #[test]
    fn gpu_demand_present() {
        let app = ml_serving_chain(1);
        let infer = app.module(&"infer".into()).unwrap();
        assert_eq!(infer.resource.demand.get(ResourceKind::Gpu), 1);
    }

    #[test]
    fn zero_replicas_clamped() {
        let app = ml_serving_chain(0);
        assert_eq!(app.module(&"weights".into()).unwrap().dist.replication, 1);
        app.validate().unwrap();
    }
}
