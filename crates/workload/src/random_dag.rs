//! Seeded random application generator, with optional seeded aspect
//! conflicts (experiment E10's detection-rate sweep).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udc_spec::prelude::*;

/// Parameters for random app generation.
#[derive(Debug, Clone, Copy)]
pub struct RandomDagConfig {
    /// Number of task modules.
    pub tasks: usize,
    /// Number of data modules.
    pub data: usize,
    /// Probability of an edge between consecutive task layers.
    pub edge_prob: f64,
    /// Probability that a data module's accessors are given
    /// *conflicting* consistency requirements.
    pub conflict_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        Self {
            tasks: 20,
            data: 6,
            edge_prob: 0.3,
            conflict_prob: 0.0,
            seed: 42,
        }
    }
}

const LEVELS: [ConsistencyLevel; 5] = [
    ConsistencyLevel::Eventual,
    ConsistencyLevel::Release,
    ConsistencyLevel::Causal,
    ConsistencyLevel::Sequential,
    ConsistencyLevel::Linearizable,
];

/// Generates a valid random application. Deterministic per seed. The
/// returned `usize` is the number of *intentionally seeded* conflicts
/// (ground truth for detection-rate measurements).
pub fn random_app(config: RandomDagConfig) -> (AppSpec, usize) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut app = AppSpec::new("random");
    let tasks = config.tasks.max(1);

    for i in 0..tasks {
        let mut t = TaskSpec::new(&format!("T{i}"))
            .with_work(rng.gen_range(10..5_000))
            .with_bytes(rng.gen_range(1 << 10..64 << 20));
        t = match rng.gen_range(0..4) {
            0 => t.with_resource(ResourceAspect::goal(Goal::Fastest)),
            1 => t.with_resource(ResourceAspect::goal(Goal::Cheapest)),
            2 => t.with_resource(
                ResourceAspect::default().with_demand(ResourceKind::Cpu, rng.gen_range(1..8)),
            ),
            _ => t,
        };
        if rng.gen_bool(0.25) {
            let level = [
                IsolationLevel::Weak,
                IsolationLevel::Medium,
                IsolationLevel::Strong,
            ][rng.gen_range(0..3)];
            t = t.with_exec_env(ExecEnvAspect::isolation(level));
        }
        app.add_task(t);
    }

    // Layered DAG: edges only go forward, guaranteeing acyclicity.
    for i in 0..tasks {
        for j in (i + 1)..tasks.min(i + 5) {
            if rng.gen_bool(config.edge_prob) {
                app.add_edge(&format!("T{i}"), &format!("T{j}"), EdgeKind::Dependency)
                    .unwrap();
            }
        }
    }

    let mut seeded_conflicts = 0;
    for d in 0..config.data {
        let name = format!("D{d}");
        app.add_data(
            DataSpec::new(&name)
                .with_bytes(rng.gen_range(1 << 20..1 << 30))
                .with_dist(DistributedAspect::default().replication(rng.gen_range(1..4))),
        );
        // Two distinct accessors.
        let a = rng.gen_range(0..tasks);
        let b = (a + 1 + rng.gen_range(0..tasks.max(2) - 1)) % tasks;
        let conflicted = rng.gen_bool(config.conflict_prob) && a != b;
        if conflicted {
            // Guaranteed-distinct levels.
            let la = rng.gen_range(0..LEVELS.len());
            let lb = (la + 1 + rng.gen_range(0..LEVELS.len() - 1)) % LEVELS.len();
            app.add_access_with(&format!("T{a}"), &name, Some(LEVELS[la]), None)
                .unwrap();
            app.add_access_with(&format!("T{b}"), &name, Some(LEVELS[lb]), None)
                .unwrap();
            seeded_conflicts += 1;
        } else {
            app.add_access_with(&format!("T{a}"), &name, None, None)
                .unwrap();
            if a != b {
                app.add_access_with(&format!("T{b}"), &name, None, None)
                    .unwrap();
            }
        }
    }

    (app, seeded_conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_spec::conflict::detect_conflicts;

    #[test]
    fn deterministic_per_seed() {
        let (a, ca) = random_app(RandomDagConfig::default());
        let (b, cb) = random_app(RandomDagConfig::default());
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let (c, _) = random_app(RandomDagConfig {
            seed: 43,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn generated_apps_validate() {
        for seed in 0..20 {
            let (app, _) = random_app(RandomDagConfig {
                seed,
                tasks: 30,
                data: 8,
                ..Default::default()
            });
            app.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn seeded_conflicts_are_detected() {
        for seed in 0..10 {
            let (app, seeded) = random_app(RandomDagConfig {
                seed,
                conflict_prob: 1.0,
                data: 10,
                ..Default::default()
            });
            let report = detect_conflicts(&app);
            assert!(
                report.len() >= seeded,
                "seed {seed}: {} detected < {seeded} seeded",
                report.len()
            );
            assert!(seeded > 0, "seed {seed}: generator should seed conflicts");
        }
    }

    #[test]
    fn no_conflicts_when_probability_zero() {
        for seed in 0..10 {
            let (_, seeded) = random_app(RandomDagConfig {
                seed,
                conflict_prob: 0.0,
                ..Default::default()
            });
            assert_eq!(seeded, 0);
        }
    }
}
