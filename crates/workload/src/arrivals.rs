//! Arrival processes for serving experiments: Poisson (exponential
//! inter-arrivals) and bursty (on/off modulated Poisson).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` Poisson arrival times (microseconds) with mean rate
/// `rate_per_sec`. Deterministic per seed.
pub fn poisson_arrivals(rate_per_sec: f64, n: usize, seed: u64) -> Vec<u64> {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Inverse-CDF exponential sampling; clamp u away from 0.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / rate_per_sec;
        t += dt;
        out.push((t * 1_000_000.0) as u64);
    }
    out
}

/// On/off bursty arrivals: bursts of `burst_rate_per_sec` for
/// `on_ms`, silence for `off_ms`, repeated until `n` arrivals exist.
pub fn bursty_arrivals(
    burst_rate_per_sec: f64,
    on_ms: u64,
    off_ms: u64,
    n: usize,
    seed: u64,
) -> Vec<u64> {
    assert!(burst_rate_per_sec > 0.0, "rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut window_start = 0u64;
    while out.len() < n {
        let mut t = window_start as f64 / 1e6;
        let window_end = window_start + on_ms * 1_000;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / burst_rate_per_sec;
            let t_us = (t * 1e6) as u64;
            if t_us >= window_end || out.len() >= n {
                break;
            }
            out.push(t_us);
        }
        window_start = window_end + off_ms * 1_000;
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_approximate() {
        let arrivals = poisson_arrivals(1000.0, 10_000, 1);
        let span_s = *arrivals.last().unwrap() as f64 / 1e6;
        let rate = arrivals.len() as f64 / span_s;
        assert!((rate - 1000.0).abs() / 1000.0 < 0.1, "rate {rate}");
    }

    #[test]
    fn arrivals_monotone() {
        let arrivals = poisson_arrivals(100.0, 1000, 2);
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            poisson_arrivals(10.0, 100, 3),
            poisson_arrivals(10.0, 100, 3)
        );
        assert_ne!(
            poisson_arrivals(10.0, 100, 3),
            poisson_arrivals(10.0, 100, 4)
        );
    }

    #[test]
    fn bursty_has_gaps() {
        let arrivals = bursty_arrivals(10_000.0, 10, 100, 500, 5);
        assert_eq!(arrivals.len(), 500);
        // There must exist an inter-arrival gap near the off period
        // (100 ms), far larger than in-burst gaps (~0.1 ms).
        let max_gap = arrivals.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_gap > 50_000, "max gap {max_gap} us");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        poisson_arrivals(0.0, 10, 1);
    }
}
