//! A latency-sensitive microservice chain: N RPC hops, each a small
//! module with its own session-state data module — the "fine-grained
//! pieces" shape §4 notes microservices already push users toward.

use udc_spec::prelude::*;

/// Builds a chain of `hops` services, each colocated with its session
/// cache.
pub fn microservice_chain(hops: u32) -> AppSpec {
    let hops = hops.max(1);
    let mut app = AppSpec::new("microservices");
    for i in 0..hops {
        let svc = format!("svc{i}");
        let cache = format!("cache{i}");
        app.add_task(
            TaskSpec::new(&svc)
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
                .with_exec_env(ExecEnvAspect::isolation(IsolationLevel::Medium))
                .with_work(30)
                .with_bytes(16 << 10),
        );
        app.add_data(
            DataSpec::new(&cache)
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Dram, 512))
                .with_dist(DistributedAspect::default().consistency(ConsistencyLevel::Causal))
                .with_bytes(512 << 20),
        );
        app.add_access_with(&svc, &cache, Some(ConsistencyLevel::Causal), None)
            .unwrap();
        app.affinity(&svc, &cache).unwrap();
        if i > 0 {
            app.add_edge(&format!("svc{}", i - 1), &svc, EdgeKind::Dependency)
                .unwrap();
        }
    }
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_valid() {
        let app = microservice_chain(5);
        app.validate().unwrap();
        assert_eq!(app.tasks().count(), 5);
        assert_eq!(app.data().count(), 5);
        assert_eq!(app.hints.len(), 5);
    }

    #[test]
    fn hops_are_ordered() {
        let app = microservice_chain(3);
        let order = app.topo_order().unwrap();
        let pos = |n: &str| order.iter().position(|m| m.as_str() == n).unwrap();
        assert!(pos("svc0") < pos("svc1"));
        assert!(pos("svc1") < pos("svc2"));
    }
}
