//! Telemetry-driven fine-tuning (§3.2).
//!
//! "Since user specified resources may be inaccurate when executing with
//! real (and changing) inputs, UDC would perform fine tuning (enlarging
//! or shrinking the amount of resources for a module, migrating modules
//! across hardware units, etc.) based on telemetry data collected at the
//! run time."
//!
//! The tuner keeps each module's smoothed utilization inside a target
//! band: above the band → grow, below → shrink, and a saturated module
//! on a full device → migrate.

use serde::{Deserialize, Serialize};
use udc_hal::Telemetry;

/// Tuner parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerConfig {
    /// Lower utilization bound: below this, shrink.
    pub low_watermark: f64,
    /// Upper utilization bound: above this, grow.
    pub high_watermark: f64,
    /// Multiplier when growing (e.g. 1.5).
    pub grow_factor: f64,
    /// Multiplier when shrinking (e.g. 0.7).
    pub shrink_factor: f64,
    /// Minimum units a module may shrink to.
    pub min_units: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        Self {
            low_watermark: 0.4,
            high_watermark: 0.9,
            grow_factor: 1.5,
            shrink_factor: 0.7,
            min_units: 1,
        }
    }
}

/// A recommended adjustment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneAction {
    /// Change the module's allocation to `new_units`.
    Resize {
        /// Module name.
        module: String,
        /// Current units.
        from_units: u64,
        /// Recommended units.
        to_units: u64,
    },
    /// The module is saturated and its device cannot grow: move it.
    Migrate {
        /// Module name.
        module: String,
        /// Units to allocate at the destination.
        units: u64,
    },
}

/// The fine-tuning controller.
#[derive(Debug, Clone, Default)]
pub struct FineTuner {
    config: TunerConfig,
    /// SLO-violation counter: samples where usage exceeded allocation.
    pub slo_violations: u64,
    /// Actions recommended so far.
    pub actions_issued: u64,
}

impl FineTuner {
    /// Creates a tuner.
    pub fn new(config: TunerConfig) -> Self {
        Self {
            config,
            slo_violations: 0,
            actions_issued: 0,
        }
    }

    /// Evaluates one module: given its smoothed usage estimate from
    /// telemetry and its current allocation, recommend an action (or
    /// nothing when inside the band).
    ///
    /// `device_headroom` is the free capacity on the hosting device; a
    /// grow that exceeds it becomes a migration.
    pub fn evaluate(
        &mut self,
        module: &str,
        telemetry: &Telemetry,
        current_units: u64,
        device_headroom: u64,
    ) -> Option<TuneAction> {
        let usage = telemetry.usage_estimate(module)?;
        if usage > 1.0 {
            self.slo_violations += 1;
        }
        if usage > self.config.high_watermark {
            let target = ((current_units as f64 * self.config.grow_factor).ceil() as u64)
                .max(current_units + 1);
            let extra = target - current_units;
            self.actions_issued += 1;
            if extra > device_headroom {
                return Some(TuneAction::Migrate {
                    module: module.to_string(),
                    units: target,
                });
            }
            return Some(TuneAction::Resize {
                module: module.to_string(),
                from_units: current_units,
                to_units: target,
            });
        }
        if usage < self.config.low_watermark && current_units > self.config.min_units {
            let target = ((current_units as f64 * self.config.shrink_factor).floor() as u64)
                .max(self.config.min_units);
            if target < current_units {
                self.actions_issued += 1;
                return Some(TuneAction::Resize {
                    module: module.to_string(),
                    from_units: current_units,
                    to_units: target,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry_with(module: &str, samples: &[f64]) -> Telemetry {
        let mut t = Telemetry::new();
        for (i, &s) in samples.iter().enumerate() {
            t.sample_usage(module, i as u64, s);
        }
        t
    }

    #[test]
    fn overloaded_module_grows() {
        let t = telemetry_with("A1", &[0.95; 20]);
        let mut tuner = FineTuner::new(TunerConfig::default());
        let action = tuner.evaluate("A1", &t, 4, 100).unwrap();
        match action {
            TuneAction::Resize {
                from_units: 4,
                to_units,
                ..
            } => assert!(to_units > 4),
            other => panic!("expected grow, got {other:?}"),
        }
    }

    #[test]
    fn idle_module_shrinks() {
        let t = telemetry_with("A1", &[0.1; 20]);
        let mut tuner = FineTuner::new(TunerConfig::default());
        let action = tuner.evaluate("A1", &t, 8, 100).unwrap();
        match action {
            TuneAction::Resize {
                from_units: 8,
                to_units,
                ..
            } => assert!(to_units < 8),
            other => panic!("expected shrink, got {other:?}"),
        }
    }

    #[test]
    fn in_band_module_untouched() {
        let t = telemetry_with("A1", &[0.7; 20]);
        let mut tuner = FineTuner::new(TunerConfig::default());
        assert!(tuner.evaluate("A1", &t, 4, 100).is_none());
        assert_eq!(tuner.actions_issued, 0);
    }

    #[test]
    fn saturated_on_full_device_migrates() {
        let t = telemetry_with("A1", &[1.2; 20]);
        let mut tuner = FineTuner::new(TunerConfig::default());
        let action = tuner.evaluate("A1", &t, 4, 0).unwrap();
        assert!(matches!(action, TuneAction::Migrate { units, .. } if units > 4));
        assert!(tuner.slo_violations > 0);
    }

    #[test]
    fn never_shrinks_below_minimum() {
        let t = telemetry_with("A1", &[0.01; 20]);
        let mut tuner = FineTuner::new(TunerConfig::default());
        assert!(tuner.evaluate("A1", &t, 1, 100).is_none());
    }

    #[test]
    fn unsampled_module_untouched() {
        let t = Telemetry::new();
        let mut tuner = FineTuner::new(TunerConfig::default());
        assert!(tuner.evaluate("ghost", &t, 4, 100).is_none());
    }

    #[test]
    fn convergence_loop_settles_in_band() {
        // A module that really needs 6 units, initially allocated 16:
        // the loop shrink-converges into the band without oscillating
        // forever.
        let mut units = 16u64;
        let need = 6.0;
        let mut tuner = FineTuner::new(TunerConfig::default());
        for round in 0..20 {
            let usage = need / units as f64;
            let t = telemetry_with("A1", &[usage; 10]);
            match tuner.evaluate("A1", &t, units, 1000) {
                Some(TuneAction::Resize { to_units, .. }) => units = to_units,
                Some(TuneAction::Migrate { units: u, .. }) => units = u,
                None => {
                    assert!(round > 0, "initial allocation was already wrong");
                    break;
                }
            }
        }
        let final_usage = need / units as f64;
        assert!(
            (0.35..=1.0).contains(&final_usage),
            "converged to units={units}, usage={final_usage}"
        );
    }
}
