//! Placing an application DAG onto the disaggregated datacenter.

use crate::policy::{LocalityPolicy, PlacementPolicy, PolicyCtx};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use udc_economics::{demand_of_app, AdmissionVerdict, SharedQuotaGate};
use udc_hal::pool::AllocConstraints;
use udc_hal::{AllocError, Allocation, Datacenter, DeviceId};
use udc_isolate::{select_env, EnvironmentPlan, WarmPool, WarmPoolConfig};
use udc_spec::{
    AppSpec, ConflictPolicy, Goal, ModuleId, ModuleKind, ResourceKind, ResourceVector, SpecError,
};
use udc_telemetry::{Decision, EventKind, FieldValue, Labels, ReasonCode, Telemetry, TraceCtx};

/// How a module's environment was started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartMode {
    /// Started from scratch.
    Cold,
    /// Served from the warm pool.
    Warm,
}

/// The placement of one module.
#[derive(Debug, Clone)]
pub struct ModulePlacement {
    /// The module.
    pub module: ModuleId,
    /// All resource allocations held (compute + memory for tasks; one
    /// per replica for data).
    pub allocations: Vec<Allocation>,
    /// The device hosting the module's execution (tasks) or primary
    /// replica (data).
    pub primary_device: DeviceId,
    /// Devices hosting data replicas (data modules; `[primary]` for
    /// replication = 1).
    pub replica_devices: Vec<DeviceId>,
    /// The concrete execution environment chosen.
    pub env: EnvironmentPlan,
    /// Cold or warm start.
    pub start_mode: StartMode,
    /// Startup latency paid (environment launch).
    pub startup_us: u64,
    /// Estimated execution time (tasks with known work), including the
    /// environment's runtime overhead.
    pub est_exec_us: Option<u64>,
    /// The compute/storage kind the module landed on.
    pub placed_kind: ResourceKind,
}

/// The placement of a whole application.
#[derive(Debug, Clone, Default)]
pub struct AppPlacement {
    /// Per-module placements, in module-id order.
    pub modules: BTreeMap<ModuleId, ModulePlacement>,
}

impl AppPlacement {
    /// Total startup latency across modules (they start in parallel per
    /// DAG level, but the sum is the provider-side work metric).
    pub fn total_startup_us(&self) -> u64 {
        self.modules.values().map(|m| m.startup_us).sum()
    }

    /// Warm-start fraction.
    pub fn warm_fraction(&self) -> f64 {
        if self.modules.is_empty() {
            return 0.0;
        }
        let warm = self
            .modules
            .values()
            .filter(|m| m.start_mode == StartMode::Warm)
            .count();
        warm as f64 / self.modules.len() as f64
    }

    /// Total units allocated, per kind.
    pub fn allocated_vector(&self) -> ResourceVector {
        let mut v = ResourceVector::new();
        for m in self.modules.values() {
            for a in &m.allocations {
                let cur = v.get(a.kind);
                v.set(a.kind, cur + a.total_units());
            }
        }
        v
    }
}

/// Scheduling failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The specification was invalid or conflicted (under an `Error`
    /// conflict policy).
    Spec(SpecError),
    /// A module's resources could not be allocated.
    Alloc {
        /// The module that failed.
        module: String,
        /// The underlying allocator error.
        cause: AllocError,
    },
    /// Replicas could not be spread over distinct devices.
    NotEnoughFailureIndependence {
        /// The data module.
        module: String,
        /// Replicas requested.
        requested: u32,
        /// Distinct devices available.
        distinct_devices: usize,
    },
    /// The tenant economics quota gate refused admission (quota
    /// exhausted or account suspended) before placement began.
    QuotaDenied {
        /// The application that was refused.
        app: String,
        /// The gate's verdict (failing dimension or suspension).
        verdict: AdmissionVerdict,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Spec(e) => write!(f, "spec error: {e}"),
            SchedError::Alloc { module, cause } => {
                write!(f, "allocation failed for `{module}`: {cause}")
            }
            SchedError::NotEnoughFailureIndependence {
                module,
                requested,
                distinct_devices,
            } => write!(
                f,
                "data module `{module}` wants {requested} replicas but only \
                 {distinct_devices} distinct devices exist"
            ),
            SchedError::QuotaDenied { app, verdict } => match verdict {
                AdmissionVerdict::QuotaExceeded {
                    kind,
                    requested,
                    in_use,
                    limit,
                } => write!(
                    f,
                    "app `{app}` denied: {} quota exceeded \
                     (in use {in_use} + requested {requested} > limit {limit})",
                    kind.name()
                ),
                AdmissionVerdict::Suspended => {
                    write!(f, "app `{app}` denied: tenant account is suspended")
                }
                AdmissionVerdict::Admit => write!(f, "app `{app}` denied (spurious)"),
            },
        }
    }
}

impl std::error::Error for SchedError {}

impl From<SpecError> for SchedError {
    fn from(e: SpecError) -> Self {
        SchedError::Spec(e)
    }
}

/// Scheduler options.
pub struct SchedOptions {
    /// Tenant tag used for allocation ownership.
    pub tenant: String,
    /// Honour colocate/affinity hints (experiment E13 toggles this).
    pub use_locality_hints: bool,
    /// Warm-pool configuration (experiment E6 sweeps this).
    pub warm_pool: WarmPoolConfig,
    /// What to do about aspect conflicts (§3.4).
    pub conflict_policy: ConflictPolicy,
    /// Candidate-ranking policy (native or tenant extension).
    pub policy: Box<dyn PlacementPolicy>,
    /// Tenant economics admission gate. `None` (the default) is the
    /// ungated seed path; the same handle is shared with the control
    /// plane, which drives renewals and the suspend lifecycle.
    pub quota_gate: Option<SharedQuotaGate>,
}

impl Default for SchedOptions {
    fn default() -> Self {
        Self {
            tenant: "tenant".to_string(),
            use_locality_hints: true,
            warm_pool: WarmPoolConfig::disabled(),
            conflict_policy: ConflictPolicy::StrictestWins,
            policy: Box::new(LocalityPolicy),
            quota_gate: None,
        }
    }
}

/// Disjoint-set structure for colocation groups.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Cached candidate list for one resource kind, valid while the pool's
/// identity stamp is unchanged.
struct CandidateCache {
    stamp: (u64, u64),
    ctxs: Vec<PolicyCtx>,
}

/// The UDC runtime scheduler.
pub struct Scheduler {
    options: SchedOptions,
    warm_pool: WarmPool,
    obs: Telemetry,
    /// Per-kind candidate lists reused across `place_app` calls: the
    /// structural fields (device, capacity, rack) are rebuilt only when
    /// the pool's stamp changes; free units are refreshed in place.
    cand_cache: BTreeMap<ResourceKind, CandidateCache>,
}

impl Scheduler {
    /// Creates a scheduler with the given options.
    pub fn new(options: SchedOptions) -> Self {
        let warm_pool = WarmPool::new(options.warm_pool.clone());
        Self {
            options,
            warm_pool,
            obs: Telemetry::disabled(),
            cand_cache: BTreeMap::new(),
        }
    }

    /// Returns the candidate list for `kind`, reusing the cached
    /// structure when the pool is unchanged (its stamp only moves on
    /// device add / guard mutation). Candidates are in device-id order —
    /// `ResourcePool::devices` iterates its id-keyed map — which is what
    /// makes placement deterministic and bit-for-bit reproducible at any
    /// experiment-harness thread count.
    fn refreshed_candidates<'a>(
        cache: &'a mut BTreeMap<ResourceKind, CandidateCache>,
        dc: &Datacenter,
        kind: ResourceKind,
        tenant: &str,
        demand: u64,
        preferred_rack: Option<u32>,
    ) -> &'a [PolicyCtx] {
        let Some(pool) = dc.pool(kind) else {
            return &[];
        };
        let stamp = pool.stamp();
        let pr = preferred_rack.unwrap_or(u32::MAX);
        let entry = cache.entry(kind).or_insert_with(|| CandidateCache {
            stamp: (0, 0),
            ctxs: Vec::new(),
        });
        if entry.stamp == stamp {
            for (c, d) in entry.ctxs.iter_mut().zip(pool.devices()) {
                debug_assert_eq!(c.device, d.id, "cached order must match pool order");
                c.free_units = d.free_for(tenant);
                c.preferred_rack = pr;
                c.demand = demand;
            }
        } else {
            entry.stamp = stamp;
            entry.ctxs.clear();
            entry.ctxs.extend(pool.devices().map(|d| PolicyCtx {
                device: d.id,
                free_units: d.free_for(tenant),
                capacity: d.capacity,
                rack: d.rack,
                preferred_rack: pr,
                demand,
            }));
        }
        &entry.ctxs
    }

    /// Installs the observability hub on the scheduler and its warm
    /// pool: placements become spans, events, and latency histograms.
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.warm_pool.set_observer(obs.clone());
        self.obs = obs;
    }

    /// The warm pool (for stats and refills between apps).
    pub fn warm_pool_mut(&mut self) -> &mut WarmPool {
        &mut self.warm_pool
    }

    /// The active placement policy.
    pub fn policy_name(&self) -> &str {
        self.options.policy.name()
    }

    /// Installs (or clears) the shared economics admission gate after
    /// construction — the control plane attaches economics to an
    /// already-built scheduler this way.
    pub fn set_quota_gate(&mut self, gate: Option<SharedQuotaGate>) {
        self.options.quota_gate = gate;
    }

    /// Places an application: conflict resolution, validation, data
    /// modules first (so tasks can follow their affinity hints), then
    /// tasks in dependency order.
    pub fn place_app(
        &mut self,
        dc: &mut Datacenter,
        app: &AppSpec,
    ) -> Result<AppPlacement, SchedError> {
        self.place_app_traced(dc, app, None)
    }

    /// [`Scheduler::place_app`] under an explicit trace context: the
    /// `sched.place` span (and everything beneath it — per-module
    /// spans, pool allocations, isolate acquisition) joins the caller's
    /// trace so one `Cloud::submit` reconstructs as a single DAG.
    pub fn place_app_traced(
        &mut self,
        dc: &mut Datacenter,
        app: &AppSpec,
        ctx: Option<TraceCtx>,
    ) -> Result<AppPlacement, SchedError> {
        let span = self.obs.span_opt(ctx.as_ref(), "sched.place");
        let pctx = span.ctx().or(ctx);
        // Economic admission runs before any placement work: a tenant
        // over quota (or suspended) is refused up front, with one audit
        // record per module so `udc-trace --explain` answers "why is my
        // module not running" for economic denials exactly like
        // capacity ones. Usage is committed only after placement
        // succeeds (see below), so a failed placement never leaks quota.
        let admission_demand = self.options.quota_gate.as_ref().map(|_| demand_of_app(app));
        if let Some(gate) = self.options.quota_gate.clone() {
            let demand = admission_demand.as_ref().expect("computed above");
            let verdict = gate
                .lock()
                .expect("quota gate poisoned")
                .admit(&self.options.tenant, demand);
            if !verdict.is_admit() {
                let (reason, detail) = match &verdict {
                    AdmissionVerdict::QuotaExceeded {
                        kind,
                        requested,
                        in_use,
                        limit,
                    } => (
                        ReasonCode::QuotaExceeded,
                        format!(
                            "{}: in use {in_use} + requested {requested} > limit {limit}",
                            kind.name()
                        ),
                    ),
                    AdmissionVerdict::Suspended => (
                        ReasonCode::Suspended,
                        "tenant account suspended; pay to reinstate".to_string(),
                    ),
                    AdmissionVerdict::Admit => unreachable!("checked above"),
                };
                for id in app.modules.keys() {
                    self.obs.decide(Decision {
                        ctx: pctx,
                        stage: "sched.admit",
                        module: id.as_str(),
                        candidate: self.options.tenant.as_str(),
                        accepted: false,
                        reason,
                        score: None,
                        detail: detail.clone(),
                    });
                }
                return Err(SchedError::QuotaDenied {
                    app: app.name.to_string(),
                    verdict,
                });
            }
        }
        if self.obs.is_enabled() {
            // `resolve` below re-runs detection; this pass only exists to
            // log what got resolved, so skip it entirely when disabled.
            for c in &udc_spec::detect_conflicts(app).conflicts {
                self.obs.event(
                    EventKind::ConflictResolution,
                    Labels::tenant(self.options.tenant.as_str()),
                    &[
                        ("app", FieldValue::from(app.name.as_str())),
                        ("conflict", FieldValue::from(c.to_string())),
                        (
                            "policy",
                            FieldValue::from(format!("{:?}", self.options.conflict_policy)),
                        ),
                    ],
                );
            }
        }
        let app = udc_spec::resolve(app, self.options.conflict_policy)?;
        app.validate()?;

        let order = app.topo_order()?;
        let colocate_rack = self.colocation_racks(&app);

        let mut placement = AppPlacement::default();
        // Data modules first (they are sources of affinity).
        let data_first: Vec<&ModuleId> = order
            .iter()
            .filter(|id| app.module(id).map(|m| m.kind) == Some(ModuleKind::Data))
            .chain(
                order
                    .iter()
                    .filter(|id| app.module(id).map(|m| m.kind) == Some(ModuleKind::Task)),
            )
            .collect();

        for id in data_first {
            let module = app.module(id).expect("ordered ids exist");
            let mspan = self.obs.span_opt(pctx.as_ref(), "sched.place_module");
            let mctx = mspan.ctx().or(pctx);
            let placed = match module.kind {
                ModuleKind::Data => self.place_data(dc, &app, module, &placement, &[], mctx)?,
                ModuleKind::Task => {
                    self.place_task(dc, &app, module, &placement, &colocate_rack, &[], mctx)?
                }
            };
            mspan.exit();
            placement.modules.insert(id.clone(), placed);
        }
        dc.telemetry_mut().incr("apps_placed", 1);
        if self.obs.is_enabled() {
            let tenant = self.options.tenant.as_str();
            for (id, m) in &placement.modules {
                let labels = Labels::module(tenant, id.as_str());
                self.obs
                    .observe("sched.module_startup_us", labels.clone(), m.startup_us);
                self.obs.event(
                    EventKind::Placement,
                    labels,
                    &[
                        ("device", FieldValue::from(m.primary_device.0)),
                        ("kind", FieldValue::from(m.placed_kind.name())),
                        ("warm", FieldValue::from(m.start_mode == StartMode::Warm)),
                        ("startup_us", FieldValue::from(m.startup_us)),
                    ],
                );
            }
            self.obs.observe(
                "sched.place.startup_us",
                Labels::tenant(tenant),
                placement.total_startup_us(),
            );
            // Bin-pack fill after this placement, in basis points.
            self.obs.gauge_set(
                "sched.binpack.fill_bp",
                Labels::none(),
                (dc.compute_utilization() * 10_000.0).round() as i64,
            );
            // Placement carves pools directly, bypassing the vector
            // allocator's watermark updates — refresh them here.
            dc.observe_pool_levels();
        }
        // Placement held: the admission estimate now counts against the
        // tenant's quota until the control plane releases it at
        // teardown.
        if let (Some(gate), Some(demand)) = (&self.options.quota_gate, &admission_demand) {
            gate.lock()
                .expect("quota gate poisoned")
                .commit(&self.options.tenant, demand);
        }
        Ok(placement)
    }

    /// Re-places a single module of an already-resolved app — the
    /// repair loop's *re-place* step (§3.4). `exclude` lists devices
    /// that must not host the module (typically the currently-crashed
    /// set): excluded candidates are rejected with
    /// [`ReasonCode::CrashExcluded`] audit records, and replica
    /// anti-affinity applies exactly as in the original placement, so a
    /// module never heals onto the failure domain it must avoid.
    ///
    /// `so_far` is the surviving placement (used for locality hints);
    /// `app` must already be conflict-resolved (e.g. the spec inside a
    /// compiled `AppIr`).
    pub fn replace_module(
        &mut self,
        dc: &mut Datacenter,
        app: &AppSpec,
        module_id: &ModuleId,
        so_far: &AppPlacement,
        exclude: &[DeviceId],
        ctx: Option<TraceCtx>,
    ) -> Result<ModulePlacement, SchedError> {
        let module = app
            .module(module_id)
            .ok_or_else(|| SchedError::Spec(SpecError::UnknownModule(module_id.to_string())))?;
        let span = self.obs.span_opt(ctx.as_ref(), "sched.replace_module");
        let mctx = span.ctx().or(ctx);
        let colocate_rack = self.colocation_racks(app);
        let placed = match module.kind {
            ModuleKind::Data => self.place_data(dc, app, module, so_far, exclude, mctx),
            ModuleKind::Task => {
                self.place_task(dc, app, module, so_far, &colocate_rack, exclude, mctx)
            }
        }?;
        if self.obs.is_enabled() {
            self.obs.event(
                EventKind::Placement,
                Labels::module(self.options.tenant.as_str(), module_id.as_str()),
                &[
                    ("device", FieldValue::from(placed.primary_device.0)),
                    ("kind", FieldValue::from(placed.placed_kind.name())),
                    ("action", FieldValue::from("replace")),
                    ("excluded_devices", FieldValue::from(exclude.len())),
                ],
            );
        }
        Ok(placed)
    }

    /// Releases every allocation of a placement.
    pub fn release_app(&mut self, dc: &mut Datacenter, placement: &AppPlacement) {
        for m in placement.modules.values() {
            for a in &m.allocations {
                dc.release(a);
            }
        }
    }

    /// Precomputed colocation-group keys: module -> group leader index.
    fn colocation_racks(&self, app: &AppSpec) -> BTreeMap<ModuleId, usize> {
        let ids: Vec<ModuleId> = app.modules.keys().cloned().collect();
        let index: BTreeMap<&ModuleId, usize> =
            ids.iter().enumerate().map(|(i, id)| (id, i)).collect();
        let mut dsu = Dsu::new(ids.len());
        if self.options.use_locality_hints {
            for h in &app.hints {
                if let udc_spec::LocalityHint::Colocate(a, b) = h {
                    if let (Some(&ia), Some(&ib)) = (index.get(a), index.get(b)) {
                        dsu.union(ia, ib);
                    }
                }
            }
        }
        ids.iter()
            .enumerate()
            .map(|(i, id)| (id.clone(), dsu.find(i)))
            .collect()
    }

    /// Chooses the compute kind for a task from demand, candidates and
    /// goal (§3.2's "if users only provide a performance/cost goal, then
    /// UDC will select resources based on load and available hardware").
    fn choose_compute_kind(&self, dc: &Datacenter, module: &udc_spec::ModuleSpec) -> ResourceKind {
        // Explicit compute demand wins.
        for (kind, _) in module.resource.demand.iter() {
            if kind.is_compute() {
                return kind;
            }
        }
        let candidates: Vec<ResourceKind> = if module.resource.candidates.is_empty() {
            vec![
                ResourceKind::Cpu,
                ResourceKind::Gpu,
                ResourceKind::Fpga,
                ResourceKind::Soc,
            ]
        } else {
            module.resource.candidates.clone()
        };
        let available = |k: &ResourceKind| {
            dc.pool(*k)
                .map(|p| p.total_capacity() > p.total_used())
                .unwrap_or(false)
        };
        match module.resource.goal {
            Some(Goal::Fastest) => candidates
                .iter()
                .filter(|k| available(k))
                .max_by(|a, b| {
                    let pa = udc_hal::PerfProfile::default_for(**a).work_units_per_sec;
                    let pb = udc_hal::PerfProfile::default_for(**b).work_units_per_sec;
                    pa.partial_cmp(&pb).expect("profiles are finite")
                })
                .copied()
                .unwrap_or(ResourceKind::Cpu),
            Some(Goal::Cheapest) | None => candidates
                .iter()
                .filter(|k| available(k))
                .min_by(|a, b| {
                    // Cost per delivered work unit.
                    let cost = |k: ResourceKind| {
                        let p = udc_hal::PerfProfile::default_for(k);
                        p.micro_dollars_per_unit_hour as f64 / p.work_units_per_sec
                    };
                    cost(**a).partial_cmp(&cost(**b)).expect("finite")
                })
                .copied()
                .unwrap_or(ResourceKind::Cpu),
        }
    }

    /// Chooses the storage kind for a data module.
    fn choose_storage_kind(&self, dc: &Datacenter, module: &udc_spec::ModuleSpec) -> ResourceKind {
        for (kind, _) in module.resource.demand.iter() {
            if !kind.is_compute() {
                return kind;
            }
        }
        let exists = |k: ResourceKind| dc.pool(k).map(|p| !p.is_empty()).unwrap_or(false);
        match module.resource.goal {
            Some(Goal::Fastest) if exists(ResourceKind::Dram) => ResourceKind::Dram,
            Some(Goal::Cheapest) if exists(ResourceKind::Hdd) => ResourceKind::Hdd,
            _ if exists(ResourceKind::Ssd) => ResourceKind::Ssd,
            _ => ResourceKind::Dram,
        }
    }

    fn place_data(
        &mut self,
        dc: &mut Datacenter,
        _app: &AppSpec,
        module: &udc_spec::ModuleSpec,
        _so_far: &AppPlacement,
        exclude: &[DeviceId],
        ctx: Option<TraceCtx>,
    ) -> Result<ModulePlacement, SchedError> {
        let kind = self.choose_storage_kind(dc, module);
        // Capacity: explicit demand, else bytes rounded up to MiB.
        let explicit = module.resource.demand.get(kind);
        let units = if explicit > 0 {
            explicit
        } else {
            module.bytes.unwrap_or(1 << 20).div_ceil(1 << 20).max(1)
        };
        let replicas = module.dist.replication;
        let mut allocations = Vec::new();
        let mut replica_devices: Vec<DeviceId> = Vec::new();
        for _ in 0..replicas {
            // Replica anti-affinity plus crash exclusion: a healing
            // replica must avoid both its surviving siblings and every
            // currently-dead device.
            let mut avoid = replica_devices.clone();
            avoid.extend_from_slice(exclude);
            let constraints = AllocConstraints {
                single_device: true,
                avoid,
                ..Default::default()
            };
            match dc
                .pool_mut(kind)
                .ok_or(SchedError::Alloc {
                    module: module.id.to_string(),
                    cause: AllocError::Insufficient {
                        kind,
                        requested: units,
                        available: 0,
                    },
                })?
                .allocate_traced(
                    &self.obs,
                    ctx.as_ref(),
                    module.id.as_str(),
                    &self.options.tenant,
                    units,
                    &constraints,
                ) {
                Ok(a) => {
                    replica_devices.push(a.slices[0].device);
                    allocations.push(a);
                }
                Err(_) => {
                    // Roll back and report missing failure independence
                    // or capacity.
                    for a in &allocations {
                        dc.release(a);
                    }
                    let distinct = dc.pool(kind).map(|p| p.len()).unwrap_or(0);
                    return if (replicas as usize) > distinct {
                        if self.obs.is_enabled() {
                            self.obs.decide(Decision {
                                ctx,
                                stage: "sched.place_data",
                                module: module.id.as_str(),
                                candidate: "-",
                                accepted: false,
                                reason: ReasonCode::FailureDomain,
                                score: None,
                                detail: format!("replicas={replicas} distinct_devices={distinct}"),
                            });
                        }
                        Err(SchedError::NotEnoughFailureIndependence {
                            module: module.id.to_string(),
                            requested: replicas,
                            distinct_devices: distinct,
                        })
                    } else {
                        Err(SchedError::Alloc {
                            module: module.id.to_string(),
                            cause: AllocError::Insufficient {
                                kind,
                                requested: units,
                                available: dc
                                    .pool(kind)
                                    .map(|p| p.total_capacity() - p.total_used())
                                    .unwrap_or(0),
                            },
                        })
                    };
                }
            }
        }
        // Data modules live in storage service environments; isolation
        // maps to the storage-side env (no TEE on storage devices).
        let env = select_env(&module.exec_env, kind).expect("selection is total");
        let (start_mode, startup_us) = self.start_env(env, ctx);
        Ok(ModulePlacement {
            module: module.id.clone(),
            primary_device: replica_devices[0],
            replica_devices,
            allocations,
            env,
            start_mode,
            startup_us,
            est_exec_us: None,
            placed_kind: kind,
        })
    }

    #[allow(clippy::too_many_arguments)] // internal: placement context + crash-exclusion set
    fn place_task(
        &mut self,
        dc: &mut Datacenter,
        app: &AppSpec,
        module: &udc_spec::ModuleSpec,
        so_far: &AppPlacement,
        colocate_group: &BTreeMap<ModuleId, usize>,
        exclude: &[DeviceId],
        ctx: Option<TraceCtx>,
    ) -> Result<ModulePlacement, SchedError> {
        let kind = self.choose_compute_kind(dc, module);
        let explicit = module.resource.demand.get(kind);
        let units = if explicit > 0 { explicit } else { 1 };

        // Locality: prefer the rack of an affinity data module, else the
        // rack where a colocation-group member already landed.
        let preferred_rack = if self.options.use_locality_hints {
            self.preferred_rack_for(app, module, so_far, colocate_group, dc)
        } else {
            None
        };

        let env = select_env(&module.exec_env, kind).expect("selection is total");

        // Rank candidates with the placement policy. The list comes
        // from the per-kind cache in device-id order (see
        // `refreshed_candidates`); the seed's re-sort per placement is
        // unnecessary because `candidates_for` already yields that
        // order, which `candidate_order_is_deterministic` pins down.
        let cands = Self::refreshed_candidates(
            &mut self.cand_cache,
            dc,
            kind,
            &self.options.tenant,
            units,
            preferred_rack,
        );
        let mut best: Option<(i64, DeviceId)> = None;
        for c in cands {
            if exclude.contains(&c.device) {
                continue;
            }
            if let Some(score) = self.options.policy.score(c) {
                if best.is_none_or(|(s, d)| score > s || (score == s && c.device < d)) {
                    best = Some((score, c.device));
                }
            }
        }
        if self.obs.is_enabled() {
            // Audit pass: one decision record per candidate, classifying
            // why each lost to the winner (crash exclusion, capacity,
            // locality, policy score). Runs only with an enabled hub —
            // the scoring loop above stays allocation-free for the
            // disabled hot path.
            for c in cands {
                let excluded = exclude.contains(&c.device);
                let score = if excluded {
                    None
                } else {
                    self.options.policy.score(c)
                };
                let accepted = score.is_some() && best.map(|(_, d)| d) == Some(c.device);
                let reason = if accepted {
                    ReasonCode::Accepted
                } else if excluded {
                    ReasonCode::CrashExcluded
                } else if score.is_none() {
                    ReasonCode::Policy
                } else if c.free_units < c.demand {
                    ReasonCode::Capacity
                } else if preferred_rack.is_some_and(|r| r != c.rack) {
                    ReasonCode::Locality
                } else {
                    ReasonCode::Policy
                };
                let detail = match reason {
                    ReasonCode::Accepted => format!("won with score {}", score.unwrap_or(0)),
                    ReasonCode::CrashExcluded => {
                        "device crashed; excluded from healing".to_string()
                    }
                    ReasonCode::Policy if score.is_none() => "policy declined".to_string(),
                    ReasonCode::Capacity => {
                        format!("free={} needed={}", c.free_units, c.demand)
                    }
                    ReasonCode::Locality => format!(
                        "rack={} preferred={}",
                        c.rack,
                        preferred_rack.unwrap_or(u32::MAX)
                    ),
                    _ => format!(
                        "scored {} below winner {}",
                        score.unwrap_or(0),
                        best.map(|(s, _)| s).unwrap_or(0)
                    ),
                };
                self.obs.decide(Decision {
                    ctx,
                    stage: "sched.place_task",
                    module: module.id.as_str(),
                    candidate: &format!("dev{}", c.device.0),
                    accepted,
                    reason,
                    score,
                    detail,
                });
            }
        }
        let constraints = AllocConstraints {
            exclusive: env.single_tenant,
            prefer_rack: preferred_rack,
            single_device: true,
            require_device: if env.single_tenant {
                // Exclusive placement overrides the policy pick: the
                // policy ranked by free space, but exclusivity needs a
                // vacant device, which the allocator finds itself.
                None
            } else {
                best.map(|(_, d)| d)
            },
            avoid: exclude.to_vec(),
        };
        let pool = dc.pool_mut(kind).ok_or(SchedError::Alloc {
            module: module.id.to_string(),
            cause: AllocError::Insufficient {
                kind,
                requested: units,
                available: 0,
            },
        })?;
        let obs = &self.obs;
        let alloc = pool
            .allocate_traced(
                obs,
                ctx.as_ref(),
                module.id.as_str(),
                &self.options.tenant,
                units,
                &constraints,
            )
            .or_else(|_| {
                // Fall back to an unpinned allocation (policy pick may
                // have raced with capacity).
                let relaxed = AllocConstraints {
                    exclusive: env.single_tenant,
                    prefer_rack: preferred_rack,
                    single_device: true,
                    require_device: None,
                    avoid: exclude.to_vec(),
                };
                pool.allocate_traced(
                    obs,
                    ctx.as_ref(),
                    module.id.as_str(),
                    &self.options.tenant,
                    units,
                    &relaxed,
                )
            })
            .map_err(|cause| SchedError::Alloc {
                module: module.id.to_string(),
                cause,
            })?;
        let device = alloc.slices[0].device;

        // Side-allocations for every other demanded kind (memory,
        // storage, and secondary compute — a module may need GPU *and*
        // orchestration CPUs, §1's example).
        let mut allocations = vec![alloc];
        for (mem_kind, mem_units) in module.resource.demand.iter() {
            if mem_kind == kind {
                continue;
            }
            let mem_constraints = AllocConstraints {
                prefer_rack: dc.fabric().rack_of(device),
                avoid: exclude.to_vec(),
                ..Default::default()
            };
            match dc
                .pool_mut(mem_kind)
                .map(|p| p.allocate(&self.options.tenant, mem_units, &mem_constraints))
            {
                Some(Ok(a)) => allocations.push(a),
                Some(Err(cause)) => {
                    for a in &allocations {
                        dc.release(a);
                    }
                    return Err(SchedError::Alloc {
                        module: module.id.to_string(),
                        cause,
                    });
                }
                None => {
                    for a in &allocations {
                        dc.release(a);
                    }
                    return Err(SchedError::Alloc {
                        module: module.id.to_string(),
                        cause: AllocError::Insufficient {
                            kind: mem_kind,
                            requested: mem_units,
                            available: 0,
                        },
                    });
                }
            }
        }

        // Hot-standby replicas for replicated tasks (Table 1's A4:
        // "Rep 2x"): extra allocations on distinct devices so the
        // domain can fail over.
        let mut replica_devices = vec![device];
        for _ in 1..module.dist.replication {
            let mut avoid = replica_devices.clone();
            avoid.extend_from_slice(exclude);
            let standby_constraints = AllocConstraints {
                exclusive: env.single_tenant,
                prefer_rack: preferred_rack,
                single_device: true,
                require_device: None,
                avoid,
            };
            match dc.pool_mut(kind).map(|p| {
                p.allocate_traced(
                    &self.obs,
                    ctx.as_ref(),
                    module.id.as_str(),
                    &self.options.tenant,
                    units,
                    &standby_constraints,
                )
            }) {
                Some(Ok(a)) => {
                    replica_devices.push(a.slices[0].device);
                    allocations.push(a);
                }
                _ => {
                    for a in &allocations {
                        dc.release(a);
                    }
                    return Err(SchedError::NotEnoughFailureIndependence {
                        module: module.id.to_string(),
                        requested: module.dist.replication,
                        distinct_devices: dc.pool(kind).map(|p| p.len()).unwrap_or(0),
                    });
                }
            }
        }

        let (start_mode, startup_us) = self.start_env(env, ctx);
        let est_exec_us = module.work_units.map(|w| {
            let base = dc
                .device(device)
                .map(|d| d.exec_time_us(w, units))
                .unwrap_or(u64::MAX);
            (base as f64 * env.kind.cost_model().runtime_overhead).ceil() as u64
        });

        Ok(ModulePlacement {
            module: module.id.clone(),
            primary_device: device,
            replica_devices,
            allocations,
            env,
            start_mode,
            startup_us,
            est_exec_us,
            placed_kind: kind,
        })
    }

    fn preferred_rack_for(
        &self,
        app: &AppSpec,
        module: &udc_spec::ModuleSpec,
        so_far: &AppPlacement,
        colocate_group: &BTreeMap<ModuleId, usize>,
        dc: &Datacenter,
    ) -> Option<u32> {
        // Affinity to a data module placed earlier.
        for h in &app.hints {
            if let udc_spec::LocalityHint::Affinity { task, data } = h {
                if task == &module.id {
                    if let Some(p) = so_far.modules.get(data) {
                        if let Some(rack) = dc.fabric().rack_of(p.primary_device) {
                            return Some(rack);
                        }
                    }
                }
            }
        }
        // Same rack as an already-placed colocation-group member.
        let my_group = colocate_group.get(&module.id)?;
        for (other, group) in colocate_group {
            if group == my_group && other != &module.id {
                if let Some(p) = so_far.modules.get(other) {
                    return dc.fabric().rack_of(p.primary_device);
                }
            }
        }
        None
    }

    /// Resizes a placed module's primary allocation to `new_units`
    /// in place (§3.2 fine-tuning: "enlarging or shrinking the amount of
    /// resources for a module"). Grows on the same device when it has
    /// headroom; otherwise falls back to [`Scheduler::migrate`].
    ///
    /// Returns the device the module ends up on.
    pub fn resize(
        &mut self,
        dc: &mut Datacenter,
        placement: &mut ModulePlacement,
        new_units: u64,
    ) -> Result<DeviceId, SchedError> {
        let kind = placement.placed_kind;
        let device = placement.primary_device;
        let old_units = placement.allocations[0].total_units();
        if new_units == old_units {
            return Ok(device);
        }
        if new_units < old_units {
            // Shrink: release the difference on the same device.
            let delta = old_units - new_units;
            if let Some(pool) = dc.pool_mut(kind) {
                if let Some(mut d) = pool.device_mut(device) {
                    d.release(&self.options.tenant, delta);
                }
            }
            placement.allocations[0].slices[0].units = new_units;
            return Ok(device);
        }
        // Grow: try to extend on the same device first.
        let delta = new_units - old_units;
        let exclusive = placement.allocations[0].slices[0].exclusive;
        let grew = dc
            .pool_mut(kind)
            .and_then(|p| p.device_mut(device))
            .map(|mut d| d.allocate(&self.options.tenant, delta, exclusive))
            .unwrap_or(false);
        if grew {
            placement.allocations[0].slices[0].units = new_units;
            return Ok(device);
        }
        self.migrate(dc, placement, new_units)
    }

    /// Migrates a module to a device that can host `new_units`
    /// ("migrating modules across hardware units", §3.2). Allocates at
    /// the destination before releasing the source (make-before-break),
    /// and pays the module's state-transfer cost on the fabric.
    pub fn migrate(
        &mut self,
        dc: &mut Datacenter,
        placement: &mut ModulePlacement,
        new_units: u64,
    ) -> Result<DeviceId, SchedError> {
        let kind = placement.placed_kind;
        let old_device = placement.primary_device;
        let exclusive = placement.allocations[0].slices[0].exclusive;
        let constraints = AllocConstraints {
            exclusive,
            prefer_rack: dc.fabric().rack_of(old_device),
            single_device: true,
            require_device: None,
            avoid: vec![old_device],
        };
        let new_alloc = dc
            .pool_mut(kind)
            .ok_or(SchedError::Alloc {
                module: placement.module.to_string(),
                cause: AllocError::Insufficient {
                    kind,
                    requested: new_units,
                    available: 0,
                },
            })?
            .allocate(&self.options.tenant, new_units, &constraints)
            .map_err(|cause| SchedError::Alloc {
                module: placement.module.to_string(),
                cause,
            })?;
        let new_device = new_alloc.slices[0].device;
        // Release the source only after the destination is secured.
        let old_alloc = std::mem::replace(&mut placement.allocations[0], new_alloc);
        dc.release(&old_alloc);
        placement.primary_device = new_device;
        if let Some(slot) = placement
            .replica_devices
            .iter_mut()
            .find(|d| **d == old_device)
        {
            *slot = new_device;
        }
        dc.telemetry_mut().incr("migrations", 1);
        Ok(new_device)
    }

    fn start_env(&mut self, env: EnvironmentPlan, ctx: Option<TraceCtx>) -> (StartMode, u64) {
        let was_ready = self.warm_pool.ready(env.kind) > 0;
        let latency = self.warm_pool.acquire_traced(env.kind, ctx.as_ref());
        let mode = if was_ready {
            StartMode::Warm
        } else {
            StartMode::Cold
        };
        (mode, latency)
    }
}

/// Computes the total data-movement cost of a placement: for every
/// access edge, the bytes of the data module cross the fabric between
/// the task's device and the data's primary device. Returns
/// (total transfer microseconds, total bytes moved cross-rack).
pub fn data_movement(dc: &Datacenter, app: &AppSpec, placement: &AppPlacement) -> (u64, u64) {
    let before = dc.fabric().traffic_bytes();
    let mut total_us = 0u64;
    for e in &app.edges {
        if e.kind != udc_spec::EdgeKind::Access {
            continue;
        }
        let (task_id, data_id) = {
            let from_is_data = app.module(&e.from).map(|m| m.kind) == Some(ModuleKind::Data);
            if from_is_data {
                (&e.to, &e.from)
            } else {
                (&e.from, &e.to)
            }
        };
        let (Some(tp), Some(dp)) = (
            placement.modules.get(task_id),
            placement.modules.get(data_id),
        ) else {
            continue;
        };
        let bytes = app.module(data_id).and_then(|m| m.bytes).unwrap_or(1 << 20);
        total_us += dc
            .fabric()
            .transfer_us(tp.primary_device, dp.primary_device, bytes);
    }
    let after = dc.fabric().traffic_bytes();
    (total_us, after.1 - before.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_spec::{
        DataSpec, DistributedAspect, EdgeKind, ExecEnvAspect, IsolationLevel, ResourceAspect,
        TaskSpec,
    };

    fn dc() -> Datacenter {
        Datacenter::default()
    }

    fn simple_app() -> AppSpec {
        let mut app = AppSpec::new("t");
        app.add_task(
            TaskSpec::new("A1")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 4))
                .with_work(100),
        );
        app.add_data(DataSpec::new("S1").with_bytes(16 << 20));
        app.add_edge("A1", "S1", EdgeKind::Access).unwrap();
        app.affinity("A1", "S1").unwrap();
        app
    }

    #[test]
    fn quota_gate_denies_and_audits_then_admits_after_release() {
        use udc_economics::{PlanSpec, QuotaGate};

        let mut gate = QuotaGate::new();
        let plan = PlanSpec {
            // simple_app needs 4 cpu + 16 MiB ssd; cap cpu at 6 so the
            // second copy is refused.
            quota: ResourceVector::new().with(ResourceKind::Cpu, 6),
            ..PlanSpec::unlimited("capped")
        };
        gate.open_account("tenant", plan, 0);
        let shared = udc_economics::shared(gate);
        let mut sched = Scheduler::new(SchedOptions {
            quota_gate: Some(shared.clone()),
            ..Default::default()
        });
        let obs = Telemetry::enabled();
        sched.set_observer(obs.clone());
        let mut dc = dc();

        let first = sched.place_app(&mut dc, &simple_app());
        assert!(first.is_ok(), "4 of 6 cpu fits");
        let second = sched.place_app(&mut dc, &simple_app());
        match second {
            Err(SchedError::QuotaDenied { app, verdict }) => {
                assert_eq!(app, "t");
                assert_eq!(
                    verdict,
                    AdmissionVerdict::QuotaExceeded {
                        kind: ResourceKind::Cpu,
                        requested: 4,
                        in_use: 4,
                        limit: 6,
                    }
                );
            }
            other => panic!("expected quota denial, got {other:?}"),
        }
        // One audit record per module of the denied app.
        let denials: Vec<_> = obs
            .decisions()
            .into_iter()
            .filter(|d| d.stage == "sched.admit")
            .collect();
        assert_eq!(denials.len(), 2);
        assert!(denials
            .iter()
            .all(|d| d.reason == ReasonCode::QuotaExceeded && !d.accepted));
        // Releasing the first app's footprint re-opens admission.
        shared
            .lock()
            .unwrap()
            .release("tenant", &udc_economics::demand_of_app(&simple_app()));
        assert!(sched.place_app(&mut dc, &simple_app()).is_ok());
    }

    #[test]
    fn places_simple_app_exactly() {
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &simple_app()).unwrap();
        assert_eq!(placement.modules.len(), 2);
        let a1 = &placement.modules[&ModuleId::from("A1")];
        assert_eq!(a1.placed_kind, ResourceKind::Cpu);
        assert_eq!(a1.allocations[0].total_units(), 4, "exact fit, no rounding");
        let s1 = &placement.modules[&ModuleId::from("S1")];
        assert_eq!(s1.allocations[0].total_units(), 16, "16 MiB on storage");
        assert!(a1.est_exec_us.is_some());
    }

    #[test]
    fn affinity_places_task_near_data() {
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &simple_app()).unwrap();
        let a1 = &placement.modules[&ModuleId::from("A1")];
        let s1 = &placement.modules[&ModuleId::from("S1")];
        let ra = dc.fabric().rack_of(a1.primary_device);
        let rs = dc.fabric().rack_of(s1.primary_device);
        assert_eq!(ra, rs, "affinity hint should colocate racks");
    }

    #[test]
    fn hints_off_ignores_affinity_sometimes_cheaper() {
        // With hints off placement still succeeds.
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions {
            use_locality_hints: false,
            ..Default::default()
        });
        assert!(sched.place_app(&mut dc, &simple_app()).is_ok());
    }

    #[test]
    fn colocated_tasks_share_rack() {
        let mut app = AppSpec::new("co");
        app.add_task(
            TaskSpec::new("A1")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2)),
        );
        app.add_task(
            TaskSpec::new("A2")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2)),
        );
        app.colocate("A1", "A2").unwrap();
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &app).unwrap();
        let r1 = dc
            .fabric()
            .rack_of(placement.modules[&ModuleId::from("A1")].primary_device);
        let r2 = dc
            .fabric()
            .rack_of(placement.modules[&ModuleId::from("A2")].primary_device);
        assert_eq!(r1, r2);
    }

    #[test]
    fn replicas_on_distinct_devices() {
        let mut app = AppSpec::new("rep");
        app.add_data(
            DataSpec::new("S1")
                .with_bytes(4 << 20)
                .with_dist(DistributedAspect::default().replication(3)),
        );
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &app).unwrap();
        let s1 = &placement.modules[&ModuleId::from("S1")];
        assert_eq!(s1.replica_devices.len(), 3);
        let mut devs = s1.replica_devices.clone();
        devs.sort();
        devs.dedup();
        assert_eq!(devs.len(), 3, "replicas must not share devices");
    }

    #[test]
    fn too_many_replicas_reported() {
        let mut app = AppSpec::new("rep");
        app.add_data(
            DataSpec::new("S1")
                .with_bytes(1 << 20)
                .with_dist(DistributedAspect::default().replication(16)),
        );
        // Datacenter with only 2 SSD shelves.
        let mut dc = Datacenter::new(udc_hal::DatacenterConfig {
            pools: vec![udc_hal::PoolConfig {
                kind: ResourceKind::Ssd,
                devices: 2,
                capacity_per_device: 1024,
            }],
            racks: 4,
            fabric: Default::default(),
        });
        let mut sched = Scheduler::new(SchedOptions::default());
        let err = sched.place_app(&mut dc, &app).unwrap_err();
        assert!(matches!(
            err,
            SchedError::NotEnoughFailureIndependence {
                requested: 16,
                distinct_devices: 2,
                ..
            }
        ));
        assert_eq!(
            dc.pool(ResourceKind::Ssd).unwrap().total_used(),
            0,
            "failed placement must roll back"
        );
    }

    #[test]
    fn single_tenant_isolation_gets_exclusive_device() {
        let mut app = AppSpec::new("iso");
        app.add_task(
            TaskSpec::new("A1")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
                .with_exec_env(ExecEnvAspect::isolation(IsolationLevel::Strongest)),
        );
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &app).unwrap();
        let a1 = &placement.modules[&ModuleId::from("A1")];
        assert!(a1.env.single_tenant);
        assert!(a1.allocations[0].slices[0].exclusive);
        let dev = dc.device(a1.primary_device).unwrap();
        assert!(dev.is_exclusive());
    }

    #[test]
    fn goal_fastest_picks_accelerator() {
        let mut app = AppSpec::new("fast");
        app.add_task(
            TaskSpec::new("A1")
                .with_resource(ResourceAspect::goal(Goal::Fastest))
                .with_work(1000),
        );
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &app).unwrap();
        assert_eq!(
            placement.modules[&ModuleId::from("A1")].placed_kind,
            ResourceKind::Gpu,
            "fastest available compute is the GPU pool"
        );
    }

    #[test]
    fn goal_cheapest_picks_cpu() {
        let mut app = AppSpec::new("cheap");
        app.add_task(TaskSpec::new("B2").with_resource(ResourceAspect::goal(Goal::Cheapest)));
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &app).unwrap();
        let kind = placement.modules[&ModuleId::from("B2")].placed_kind;
        // CPU has the best $-per-work-unit in the default profiles.
        assert_eq!(kind, ResourceKind::Cpu);
    }

    #[test]
    fn warm_pool_reduces_startup() {
        let app = {
            let mut a = AppSpec::new("w");
            a.add_task(TaskSpec::new("A1"));
            a
        };
        let mut dc_cold = dc();
        let mut cold = Scheduler::new(SchedOptions::default());
        let p_cold = cold.place_app(&mut dc_cold, &app).unwrap();

        let mut dc_warm = dc();
        let mut warm = Scheduler::new(SchedOptions {
            warm_pool: udc_isolate::WarmPoolConfig::uniform(4),
            ..Default::default()
        });
        let p_warm = warm.place_app(&mut dc_warm, &app).unwrap();
        assert!(p_warm.total_startup_us() < p_cold.total_startup_us());
        assert_eq!(p_warm.warm_fraction(), 1.0);
        assert_eq!(p_cold.warm_fraction(), 0.0);
    }

    #[test]
    fn release_returns_all_capacity() {
        let mut dc = dc();
        let used_before: u64 = ResourceKind::ALL
            .iter()
            .filter_map(|k| dc.pool(*k).map(|p| p.total_used()))
            .sum();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &simple_app()).unwrap();
        sched.release_app(&mut dc, &placement);
        let used_after: u64 = ResourceKind::ALL
            .iter()
            .filter_map(|k| dc.pool(*k).map(|p| p.total_used()))
            .sum();
        assert_eq!(used_before, used_after);
    }

    #[test]
    fn data_movement_smaller_with_hints() {
        let app = simple_app();
        let mut dc1 = dc();
        let mut with_hints = Scheduler::new(SchedOptions::default());
        let p1 = with_hints.place_app(&mut dc1, &app).unwrap();
        let (us_hints, _) = data_movement(&dc1, &app, &p1);

        let mut dc2 = dc();
        let mut without = Scheduler::new(SchedOptions {
            use_locality_hints: false,
            ..Default::default()
        });
        let p2 = without.place_app(&mut dc2, &app).unwrap();
        let (us_plain, _) = data_movement(&dc2, &app, &p2);
        assert!(us_hints <= us_plain, "{us_hints} vs {us_plain}");
    }

    #[test]
    fn conflict_error_policy_propagates() {
        use udc_spec::ConsistencyLevel;
        let mut app = AppSpec::new("c");
        app.add_task(TaskSpec::new("A"));
        app.add_task(TaskSpec::new("B"));
        app.add_data(DataSpec::new("S"));
        app.add_access_with("A", "S", Some(ConsistencyLevel::Sequential), None)
            .unwrap();
        app.add_access_with("B", "S", Some(ConsistencyLevel::Release), None)
            .unwrap();
        let mut dc = dc();
        let mut sched = Scheduler::new(SchedOptions {
            conflict_policy: ConflictPolicy::Error,
            ..Default::default()
        });
        assert!(matches!(
            sched.place_app(&mut dc, &app),
            Err(SchedError::Spec(SpecError::Conflict(_)))
        ));
        // Strictest-wins succeeds on the same app.
        let mut sched2 = Scheduler::new(SchedOptions::default());
        assert!(sched2.place_app(&mut dc, &app).is_ok());
    }
}

#[cfg(test)]
mod resize_tests {
    use super::*;
    use udc_spec::{ResourceAspect, TaskSpec};

    fn one_task_app(cores: u64) -> AppSpec {
        let mut app = AppSpec::new("r");
        app.add_task(
            TaskSpec::new("T")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, cores)),
        );
        app
    }

    #[test]
    fn shrink_returns_capacity_in_place() {
        let mut dc = Datacenter::default();
        let mut sched = Scheduler::new(SchedOptions::default());
        let mut placement = sched.place_app(&mut dc, &one_task_app(16)).unwrap();
        let used_before = dc.pool(ResourceKind::Cpu).unwrap().total_used();
        let m = placement.modules.get_mut(&ModuleId::from("T")).unwrap();
        let old_device = m.primary_device;
        let device = sched.resize(&mut dc, m, 4).unwrap();
        assert_eq!(device, old_device, "shrink stays in place");
        assert_eq!(
            dc.pool(ResourceKind::Cpu).unwrap().total_used(),
            used_before - 12
        );
        assert_eq!(m.allocations[0].total_units(), 4);
    }

    #[test]
    fn grow_in_place_when_headroom_exists() {
        let mut dc = Datacenter::default();
        let mut sched = Scheduler::new(SchedOptions::default());
        let mut placement = sched.place_app(&mut dc, &one_task_app(4)).unwrap();
        let m = placement.modules.get_mut(&ModuleId::from("T")).unwrap();
        let old_device = m.primary_device;
        let device = sched.resize(&mut dc, m, 8).unwrap();
        assert_eq!(device, old_device, "64-core device has headroom");
        assert_eq!(m.allocations[0].total_units(), 8);
    }

    #[test]
    fn grow_migrates_when_device_full() {
        // A tiny datacenter: two 8-core devices. Fill the module's
        // device with a second tenant, then grow past its capacity.
        let mut dc = Datacenter::new(udc_hal::DatacenterConfig {
            pools: vec![udc_hal::PoolConfig {
                kind: ResourceKind::Cpu,
                devices: 2,
                capacity_per_device: 8,
            }],
            racks: 2,
            fabric: Default::default(),
        });
        let mut sched = Scheduler::new(SchedOptions::default());
        let mut placement = sched.place_app(&mut dc, &one_task_app(4)).unwrap();
        let m = placement.modules.get_mut(&ModuleId::from("T")).unwrap();
        let old_device = m.primary_device;
        // Fill the rest of the old device.
        dc.pool_mut(ResourceKind::Cpu)
            .unwrap()
            .device_mut(old_device)
            .unwrap()
            .allocate("other", 4, false);
        let device = sched.resize(&mut dc, m, 6).unwrap();
        assert_ne!(device, old_device, "must migrate");
        assert_eq!(m.primary_device, device);
        assert_eq!(m.allocations[0].total_units(), 6);
        // The old allocation was released.
        let old = dc
            .pool(ResourceKind::Cpu)
            .unwrap()
            .device(old_device)
            .unwrap();
        assert_eq!(old.used(), 4, "only the other tenant remains");
        assert_eq!(dc.telemetry().counter("migrations"), 1);
    }

    #[test]
    fn migration_is_make_before_break() {
        // When no destination exists, the module keeps its old home.
        let mut dc = Datacenter::new(udc_hal::DatacenterConfig {
            pools: vec![udc_hal::PoolConfig {
                kind: ResourceKind::Cpu,
                devices: 1,
                capacity_per_device: 8,
            }],
            racks: 1,
            fabric: Default::default(),
        });
        let mut sched = Scheduler::new(SchedOptions::default());
        let mut placement = sched.place_app(&mut dc, &one_task_app(8)).unwrap();
        let m = placement.modules.get_mut(&ModuleId::from("T")).unwrap();
        let err = sched.migrate(&mut dc, m, 8);
        assert!(err.is_err(), "single-device pool has no destination");
        assert_eq!(m.allocations[0].total_units(), 8, "old allocation intact");
        assert_eq!(dc.pool(ResourceKind::Cpu).unwrap().total_used(), 8);
    }

    #[test]
    fn resize_noop_when_equal() {
        let mut dc = Datacenter::default();
        let mut sched = Scheduler::new(SchedOptions::default());
        let mut placement = sched.place_app(&mut dc, &one_task_app(4)).unwrap();
        let m = placement.modules.get_mut(&ModuleId::from("T")).unwrap();
        let before = dc.pool(ResourceKind::Cpu).unwrap().total_used();
        sched.resize(&mut dc, m, 4).unwrap();
        assert_eq!(dc.pool(ResourceKind::Cpu).unwrap().total_used(), before);
    }

    #[test]
    fn candidate_order_is_deterministic() {
        // Placement is only reproducible bit-for-bit (including across
        // parallel experiment trials) because candidates are evaluated in a
        // deterministic order: strictly increasing device id. The cache in
        // `refreshed_candidates` relies on this being the natural iteration
        // order of the pool, with no per-placement re-sort.
        let dc = Datacenter::default();
        let cands = crate::policy::candidates_for(&dc, ResourceKind::Cpu, "t", 4, Some(1));
        assert!(!cands.is_empty());
        assert!(
            cands.windows(2).all(|w| w[0].device < w[1].device),
            "candidates_for must yield strictly increasing device ids"
        );

        // The cached path must expose the same devices in the same order,
        // and refreshing on an unchanged pool must not perturb it.
        let mut cache = BTreeMap::new();
        for _ in 0..2 {
            let cached = Scheduler::refreshed_candidates(
                &mut cache,
                &dc,
                ResourceKind::Cpu,
                "t",
                4,
                Some(1),
            );
            assert_eq!(cached.len(), cands.len());
            for (a, b) in cached.iter().zip(&cands) {
                assert_eq!(a.device, b.device);
                assert_eq!(a.free_units, b.free_units);
            }
        }
    }
}
