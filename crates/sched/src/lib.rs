//! # udc-sched — the UDC runtime scheduler (§3.2)
//!
//! "Our runtime scheduler would use the user-supplied resource aspect,
//! execution environment aspect, and locality information from the
//! application semantic aspect to decide the location(s) to execute a
//! module and initialize it with the resource amount as user specified."
//!
//! Components:
//!
//! - [`scheduler::Scheduler`] — places a whole application DAG onto a
//!   [`udc_hal::Datacenter`]: exact-fit pool allocation, colocation
//!   groups, task↔data affinity, replica anti-affinity, execution-
//!   environment selection, and warm-pool-aware startup accounting;
//! - [`policy::PlacementPolicy`] — the ranking hook, with a native
//!   locality policy and [`policy::ExtVmPolicy`] that runs *tenant
//!   bytecode* in the sandboxed extension VM (the "user-defined" in
//!   User-Defined Cloud);
//! - [`binpack::ServerCluster`] — the traditional-server baseline:
//!   bin-packing whole-server shapes (first-fit-decreasing / best-fit),
//!   used by experiments E3/E4 to quantify the waste UDC removes;
//! - [`finetune::FineTuner`] — §3.2's telemetry-driven fine-tuning:
//!   grow/shrink/migrate recommendations from usage estimates.

pub mod binpack;
pub mod finetune;
pub mod policy;
pub mod scheduler;

pub use binpack::{NaiveServerCluster, PackAlgo, PackOutcome, ServerCluster, ServerShape};
pub use finetune::{FineTuner, TuneAction, TunerConfig};
pub use policy::{ExtVmPolicy, LocalityPolicy, PlacementPolicy, PolicyCtx};
pub use scheduler::{
    data_movement, AppPlacement, ModulePlacement, SchedError, SchedOptions, Scheduler, StartMode,
};
