//! Placement policies: how candidate devices are ranked.
//!
//! The provider ships a native locality-aware policy; tenants may
//! *override* it with their own policy compiled to extension-VM bytecode
//! (Design Principles 1–2: the user defines, the provider executes the
//! definition safely).

use udc_extvm::{Host, Program, Vm, VmLimits};
use udc_hal::{Datacenter, DeviceId};

/// Context describing one candidate device for one module placement.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCtx {
    /// Candidate device.
    pub device: DeviceId,
    /// Free units on the device (for the tenant).
    pub free_units: u64,
    /// Device capacity.
    pub capacity: u64,
    /// The device's rack.
    pub rack: u32,
    /// Rack preferred by locality hints (u32::MAX = none).
    pub preferred_rack: u32,
    /// Units the module demands.
    pub demand: u64,
}

/// Ranks candidate devices; higher scores win. Returning `None` vetoes
/// the candidate.
pub trait PlacementPolicy {
    /// Scores a candidate.
    fn score(&mut self, ctx: &PolicyCtx) -> Option<i64>;

    /// Human-readable name (for experiment output).
    fn name(&self) -> &str;
}

/// The provider's native policy: prefer the hinted rack, then best-fit
/// (least leftover capacity) to keep large holes open.
#[derive(Debug, Default, Clone)]
pub struct LocalityPolicy;

impl PlacementPolicy for LocalityPolicy {
    fn score(&mut self, ctx: &PolicyCtx) -> Option<i64> {
        if ctx.free_units < ctx.demand {
            return None;
        }
        let rack_bonus = if ctx.preferred_rack != u32::MAX && ctx.rack == ctx.preferred_rack {
            1_000_000
        } else {
            0
        };
        let leftover = (ctx.free_units - ctx.demand) as i64;
        // Best-fit: smaller leftover scores higher.
        Some(rack_bonus - leftover)
    }

    fn name(&self) -> &str {
        "native-locality"
    }
}

/// A tenant-supplied policy running in the sandboxed extension VM.
///
/// The program receives the candidate as VM arguments
/// `[free, capacity, rack, preferred_rack, demand]` and returns a score;
/// a negative score vetoes the candidate. Any trap (gas exhaustion,
/// memory violation, hostile code) vetoes the candidate and is counted,
/// so a broken or malicious extension degrades *that tenant's* placement
/// quality without affecting the control plane.
pub struct ExtVmPolicy {
    program: Program,
    vm: Vm,
    name: String,
    /// Traps observed (telemetry for experiment E14).
    pub traps: u64,
    /// Total gas consumed across invocations.
    pub gas_used: u64,
}

impl ExtVmPolicy {
    /// Wraps an assembled tenant program.
    pub fn new(name: impl Into<String>, program: Program, limits: VmLimits) -> Self {
        Self {
            program,
            vm: Vm::new(limits),
            name: name.into(),
            traps: 0,
            gas_used: 0,
        }
    }
}

/// Host functions exposed to placement policies. Index 0 returns the
/// absolute difference of its two arguments (a convenience the native
/// ISA lacks); more can be added without breaking old programs.
struct PolicyHost;

impl Host for PolicyHost {
    fn call(&mut self, idx: u8, args: &[i64]) -> Result<i64, String> {
        match idx {
            0 => match args {
                [a, b] => Ok((a - b).abs()),
                _ => Err("host fn 0 wants 2 args".to_string()),
            },
            other => Err(format!("no host function {other}")),
        }
    }
}

impl PlacementPolicy for ExtVmPolicy {
    fn score(&mut self, ctx: &PolicyCtx) -> Option<i64> {
        if ctx.free_units < ctx.demand {
            return None;
        }
        let args = [
            ctx.free_units as i64,
            ctx.capacity as i64,
            ctx.rack as i64,
            if ctx.preferred_rack == u32::MAX {
                -1
            } else {
                ctx.preferred_rack as i64
            },
            ctx.demand as i64,
        ];
        let result = self.vm.run(&self.program, &args, &mut PolicyHost);
        self.gas_used += self.vm.last_gas_used();
        match result {
            Ok(score) if score >= 0 => Some(score),
            Ok(_) => None,
            Err(_) => {
                self.traps += 1;
                None
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the [`PolicyCtx`] list for a demand on one resource pool.
pub fn candidates_for(
    dc: &Datacenter,
    kind: udc_spec::ResourceKind,
    tenant: &str,
    demand: u64,
    preferred_rack: Option<u32>,
) -> Vec<PolicyCtx> {
    let Some(pool) = dc.pool(kind) else {
        return Vec::new();
    };
    pool.devices()
        .map(|d| PolicyCtx {
            device: d.id,
            free_units: d.free_for(tenant),
            capacity: d.capacity,
            rack: d.rack,
            preferred_rack: preferred_rack.unwrap_or(u32::MAX),
            demand,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_extvm::assemble;

    fn ctx(free: u64, rack: u32, preferred: u32, demand: u64) -> PolicyCtx {
        PolicyCtx {
            device: DeviceId(0),
            free_units: free,
            capacity: 64,
            rack,
            preferred_rack: preferred,
            demand,
        }
    }

    #[test]
    fn native_policy_prefers_hinted_rack() {
        let mut p = LocalityPolicy;
        let hinted = p.score(&ctx(32, 1, 1, 4)).unwrap();
        let other = p.score(&ctx(32, 0, 1, 4)).unwrap();
        assert!(hinted > other);
    }

    #[test]
    fn native_policy_best_fit() {
        let mut p = LocalityPolicy;
        let tight = p.score(&ctx(5, 0, u32::MAX, 4)).unwrap();
        let loose = p.score(&ctx(60, 0, u32::MAX, 4)).unwrap();
        assert!(tight > loose, "best-fit prefers the snug device");
    }

    #[test]
    fn native_policy_vetoes_insufficient() {
        let mut p = LocalityPolicy;
        assert!(p.score(&ctx(3, 0, u32::MAX, 4)).is_none());
    }

    #[test]
    fn extvm_policy_scores() {
        // Tenant policy: score = free - demand (worst-fit: prefer the
        // emptiest device — a policy the provider does NOT offer).
        let prog = assemble("arg 0\narg 4\nsub\nret").unwrap();
        let mut p = ExtVmPolicy::new("tenant-worst-fit", prog, VmLimits::default());
        let empty = p.score(&ctx(60, 0, u32::MAX, 4)).unwrap();
        let snug = p.score(&ctx(5, 0, u32::MAX, 4)).unwrap();
        assert!(empty > snug, "tenant policy inverts the provider default");
        assert!(p.gas_used > 0);
    }

    #[test]
    fn extvm_negative_score_vetoes() {
        let prog = assemble("push -1\nret").unwrap();
        let mut p = ExtVmPolicy::new("veto-all", prog, VmLimits::default());
        assert!(p.score(&ctx(60, 0, u32::MAX, 4)).is_none());
        assert_eq!(p.traps, 0, "a clean negative return is not a trap");
    }

    #[test]
    fn hostile_extension_contained() {
        // An infinite loop: every invocation traps on gas, vetoing the
        // candidate, but the control plane survives.
        let prog = assemble("spin: jmp spin").unwrap();
        let mut p = ExtVmPolicy::new(
            "hostile",
            prog,
            VmLimits {
                max_gas: 10_000,
                ..Default::default()
            },
        );
        for _ in 0..5 {
            assert!(p.score(&ctx(60, 0, u32::MAX, 4)).is_none());
        }
        assert_eq!(p.traps, 5);
    }

    #[test]
    fn extvm_host_function_usable() {
        // score = 100 - |rack - preferred| via host fn 0.
        let prog = assemble("push 100\narg 2\narg 3\nhostcall 0.2\nsub\nret").unwrap();
        let mut p = ExtVmPolicy::new("rack-distance", prog, VmLimits::default());
        let near = p.score(&ctx(32, 2, 2, 1)).unwrap();
        let far = p.score(&ctx(32, 9, 2, 1)).unwrap();
        assert!(near > far);
    }
}
