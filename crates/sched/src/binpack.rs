//! The traditional-server baseline: bin-packing module demands onto
//! fixed server shapes.
//!
//! §3.2 contrasts disaggregated pool allocation with "a bin-packing
//! problem with traditional servers"; experiments E3/E4 use this module
//! as the today's-cloud side of that comparison. LegoOS \[36\] reported
//! ~2× utilization improvement from abandoning server boundaries — the
//! shape this baseline lets us reproduce.
//!
//! # Open-server index
//!
//! The seed implementation re-scanned every open server per placed
//! demand (O(servers) per demand, quadratic per workload). The cluster
//! now maintains two structures over its open servers:
//!
//! - a segment tree of per-dimension free maxima ([`MaxSegTree`]) whose
//!   leftmost-fit descent answers first-fit in O(log servers) with the
//!   exact `iter().position()` semantics, and
//! - an ordered residual index `(scalar free, index)` whose ascending
//!   range scan answers best-fit: when a demand fits a server, the
//!   leftover scalar is `scalar(free) − scalar(demand)`, so the first
//!   fitting entry at or above `scalar(demand)` *is* the
//!   `min_by_key(leftover)` winner, lowest index on ties.
//!
//! [`NaiveServerCluster`] retains the seed scan verbatim so property
//! tests (`tests/prop_binpack_equiv.rs`) and `bench_control_plane` can
//! hold the index to the original behavior and price the difference.

use serde::{Deserialize, Serialize};
use udc_spec::{ResourceKind, ResourceVector};

/// A server shape: the multi-dimensional capacity of one machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerShape {
    /// Capacity per resource kind.
    pub capacity: ResourceVector,
}

impl ServerShape {
    /// A typical 2021 two-socket server: 64 cores, 256 GiB DRAM,
    /// 2 TiB SSD, optionally `gpus` GPUs.
    pub fn standard(gpus: u64) -> Self {
        let mut v = ResourceVector::new()
            .with(ResourceKind::Cpu, 64)
            .with(ResourceKind::Dram, 256 * 1024)
            .with(ResourceKind::Ssd, 2 * 1024 * 1024);
        if gpus > 0 {
            v.set(ResourceKind::Gpu, gpus);
        }
        Self { capacity: v }
    }
}

/// Packing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackAlgo {
    /// First-fit over items sorted by decreasing scalar size.
    FirstFitDecreasing,
    /// Best-fit (least total leftover across dimensions).
    BestFit,
}

/// The outcome of packing a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackOutcome {
    /// Servers opened.
    pub servers_used: usize,
    /// Demands that did not fit any server shape at all.
    pub unplaceable: usize,
    /// Aggregate utilization per kind: (kind, used, provisioned).
    pub utilization: Vec<(ResourceKind, u64, u64)>,
}

impl PackOutcome {
    /// Mean utilization across kinds that were provisioned, in \[0, 1\].
    pub fn mean_utilization(&self) -> f64 {
        let (sum, n) = self
            .utilization
            .iter()
            .filter(|(_, _, cap)| *cap > 0)
            .fold((0.0f64, 0usize), |(sum, n), (_, used, cap)| {
                (sum + *used as f64 / *cap as f64, n + 1)
            });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// A segment tree over open servers holding the per-dimension maximum
/// free capacity of each subtree. Leftmost-fit searches left-to-right,
/// pruning any subtree with some dimension's maximum below the demand —
/// a sound prune (no server inside can host) — and accepts the first
/// leaf whose entries host, which is exact because leaf entries are the
/// server's actual free vector. Maxima passing at an inner node is
/// *not* sufficient (each dimension's max may come from a different
/// child), hence the search rather than a single descent.
#[derive(Debug, Clone, Default)]
struct MaxSegTree {
    dims: Vec<ResourceKind>,
    /// Leaf capacity (power of two; 0 until the first push).
    cap: usize,
    /// Active leaves.
    len: usize,
    /// Flat per-node maxima: node `n` occupies
    /// `[n * dims.len(), (n + 1) * dims.len())`. Nodes `1..2*cap`;
    /// leaves start at `cap`. Unused leaves stay all-zero, so they can
    /// never host a non-zero demand.
    node: Vec<u64>,
}

impl MaxSegTree {
    fn new(dims: Vec<ResourceKind>) -> Self {
        Self {
            dims,
            cap: 0,
            len: 0,
            node: Vec::new(),
        }
    }

    fn d(&self) -> usize {
        self.dims.len()
    }

    fn write_leaf(&mut self, idx: usize, free: &ResourceVector) {
        let base = (self.cap + idx) * self.d();
        for (j, &k) in self.dims.iter().enumerate() {
            self.node[base + j] = free.get(k);
        }
    }

    fn recompute(&mut self, n: usize) {
        let d = self.d();
        let (base, left, right) = (n * d, 2 * n * d, (2 * n + 1) * d);
        for j in 0..d {
            self.node[base + j] = self.node[left + j].max(self.node[right + j]);
        }
    }

    fn bubble_up(&mut self, idx: usize) {
        let mut n = (self.cap + idx) / 2;
        while n >= 1 {
            self.recompute(n);
            n /= 2;
        }
    }

    /// Appends a leaf, doubling the tree when full.
    fn push(&mut self, free: &ResourceVector) {
        if self.len == self.cap {
            let new_cap = (self.cap * 2).max(1);
            let d = self.d();
            let mut grown = Self {
                dims: std::mem::take(&mut self.dims),
                cap: new_cap,
                len: self.len,
                node: vec![0u64; 2 * new_cap * d],
            };
            for i in 0..self.len {
                let (src, dst) = ((self.cap + i) * d, (new_cap + i) * d);
                grown.node[dst..dst + d].copy_from_slice(&self.node[src..src + d]);
            }
            for n in (1..new_cap).rev() {
                grown.recompute(n);
            }
            *self = grown;
        }
        let idx = self.len;
        self.len += 1;
        self.write_leaf(idx, free);
        self.bubble_up(idx);
    }

    /// Overwrites leaf `idx` with the server's new free vector.
    fn update(&mut self, idx: usize, free: &ResourceVector) {
        self.write_leaf(idx, free);
        self.bubble_up(idx);
    }

    /// Lowest leaf whose free vector hosts `demand` in every dimension —
    /// the `iter().position(|free| demand.fits_in(free))` answer — plus
    /// the number of subtrees pruned: nodes whose per-dimension maximum
    /// could not host the demand, so their whole leaf range was skipped
    /// without evaluation. The count feeds the
    /// `sched.binpack.seg_prunes` audit counter.
    fn leftmost_fit_counted(&self, demand: &ResourceVector) -> (Option<usize>, u64) {
        if self.len == 0 {
            return (None, 0);
        }
        let d = self.d();
        let need: Vec<u64> = self.dims.iter().map(|&k| demand.get(k)).collect();
        let hosts = |n: usize| (0..d).all(|j| self.node[n * d + j] >= need[j]);
        let mut prunes = 0u64;
        // DFS preferring the left child: pushed right-then-left so leaves
        // are visited in index order; the first hosting leaf wins.
        let mut stack = vec![1usize];
        while let Some(n) = stack.pop() {
            if !hosts(n) {
                prunes += 1;
                continue;
            }
            if n >= self.cap {
                let idx = n - self.cap;
                if idx < self.len {
                    return (Some(idx), prunes);
                }
                // An unused all-zero leaf can only host an all-zero
                // demand; keep looking (there is nothing to its right).
                continue;
            }
            stack.push(2 * n + 1);
            stack.push(2 * n);
        }
        (None, prunes)
    }
}

/// A cluster of identical servers, opened on demand (the provider
/// provisions a server whenever the workload does not fit the open
/// ones).
#[derive(Debug, Clone)]
pub struct ServerCluster {
    shape: ServerShape,
    /// Free capacity of each opened server.
    open: Vec<ResourceVector>,
    /// `(scalar free, index)` over open servers, ascending — the
    /// best-fit residual index.
    by_scalar: std::collections::BTreeSet<(u64, usize)>,
    /// Per-dimension free maxima — the first-fit index.
    max_tree: MaxSegTree,
    used_total: ResourceVector,
    unplaceable: usize,
    /// Cumulative subtrees pruned by the segment-tree probe.
    probe_prunes: u64,
    /// Observability hub (disabled no-op by default).
    obs: udc_telemetry::Telemetry,
}

impl ServerCluster {
    /// Creates an empty cluster of the given shape.
    pub fn new(shape: ServerShape) -> Self {
        let dims: Vec<ResourceKind> = shape.capacity.iter().map(|(k, _)| k).collect();
        Self {
            shape,
            open: Vec::new(),
            by_scalar: std::collections::BTreeSet::new(),
            max_tree: MaxSegTree::new(dims),
            used_total: ResourceVector::new(),
            unplaceable: 0,
            probe_prunes: 0,
            obs: udc_telemetry::Telemetry::disabled(),
        }
    }

    /// Installs the observability hub: each [`ServerCluster::pack_all`]
    /// reports its segment-tree prune count to the
    /// `sched.binpack.seg_prunes` counter and logs one audit decision
    /// record summarizing the pass.
    pub fn set_observer(&mut self, obs: udc_telemetry::Telemetry) {
        self.obs = obs;
    }

    /// Subtrees the segment-tree probe has pruned so far (candidates
    /// skipped without per-server evaluation).
    pub fn probe_prunes(&self) -> u64 {
        self.probe_prunes
    }

    /// Packs one demand, opening a new server if necessary. Returns the
    /// server index, or `None` when the demand exceeds the shape itself.
    pub fn place(&mut self, demand: &ResourceVector, algo: PackAlgo) -> Option<usize> {
        if !demand.fits_in(&self.shape.capacity) {
            self.unplaceable += 1;
            return None;
        }
        let chosen = match algo {
            PackAlgo::FirstFitDecreasing => {
                let (hit, prunes) = self.max_tree.leftmost_fit_counted(demand);
                self.probe_prunes += prunes;
                hit
            }
            PackAlgo::BestFit => {
                // Every fitting server satisfies scalar(free) ≥
                // scalar(demand) and leaves scalar(free) − scalar(demand)
                // behind, so the first fitting entry of the ascending
                // range is the least-leftover, lowest-index winner.
                let floor = demand.scalar_size();
                self.by_scalar
                    .range((floor, 0)..)
                    .find(|&&(_, i)| demand.fits_in(&self.open[i]))
                    .map(|&(_, i)| i)
            }
        };
        let idx = match chosen {
            Some(i) => i,
            None => {
                self.open.push(self.shape.capacity.clone());
                let i = self.open.len() - 1;
                self.by_scalar.insert((self.open[i].scalar_size(), i));
                self.max_tree.push(&self.open[i]);
                i
            }
        };
        self.by_scalar.remove(&(self.open[idx].scalar_size(), idx));
        self.open[idx].saturating_sub_assign(demand);
        self.by_scalar.insert((self.open[idx].scalar_size(), idx));
        self.max_tree.update(idx, &self.open[idx]);
        self.used_total.saturating_add_assign(demand);
        Some(idx)
    }

    /// Packs one demand like [`ServerCluster::place`], but refuses to
    /// grow the fleet beyond `max_servers` — the fixed-fleet admission
    /// model of experiment E4. Returns `None` (without side effects)
    /// when the demand fits no open server and the fleet is at its cap.
    pub fn place_bounded(
        &mut self,
        demand: &ResourceVector,
        algo: PackAlgo,
        max_servers: usize,
    ) -> Option<usize> {
        if !demand.fits_in(&self.shape.capacity) {
            self.unplaceable += 1;
            return None;
        }
        let (fit, prunes) = self.max_tree.leftmost_fit_counted(demand);
        self.probe_prunes += prunes;
        if fit.is_none() && self.open.len() >= max_servers {
            return None;
        }
        self.place(demand, algo)
    }

    /// Packs a whole workload (sorted decreasing for FFD; as-given for
    /// best-fit) and reports the outcome.
    pub fn pack_all(&mut self, demands: &[ResourceVector], algo: PackAlgo) -> PackOutcome {
        let prunes_before = self.probe_prunes;
        let mut items: Vec<(u64, &ResourceVector)> =
            demands.iter().map(|d| (d.scalar_size(), d)).collect();
        if algo == PackAlgo::FirstFitDecreasing {
            // Precomputed keys; the stable sort keeps ties in input
            // order, as the seed's sort_by_key did.
            items.sort_by_key(|&(size, _)| std::cmp::Reverse(size));
        }
        for (_, d) in items {
            self.place(d, algo);
        }
        if self.obs.is_enabled() {
            let prunes = self.probe_prunes - prunes_before;
            self.obs.incr(
                "sched.binpack.seg_prunes",
                udc_telemetry::Labels::none(),
                prunes,
            );
            self.obs.decide(udc_telemetry::Decision {
                ctx: None,
                stage: "sched.binpack",
                module: "-",
                candidate: "-",
                accepted: true,
                reason: udc_telemetry::ReasonCode::Prune,
                score: None,
                detail: format!(
                    "pruned={prunes} demands={} servers={}",
                    demands.len(),
                    self.open.len()
                ),
            });
        }
        self.outcome()
    }

    /// The current outcome.
    pub fn outcome(&self) -> PackOutcome {
        let provisioned = self.shape.capacity.scaled(self.open.len() as u64);
        let utilization = ResourceKind::ALL
            .into_iter()
            .filter(|k| provisioned.get(*k) > 0)
            .map(|k| (k, self.used_total.get(k), provisioned.get(k)))
            .collect();
        PackOutcome {
            servers_used: self.open.len(),
            unplaceable: self.unplaceable,
            utilization,
        }
    }

    /// Servers opened so far.
    pub fn servers_used(&self) -> usize {
        self.open.len()
    }
}

/// The seed bin-packer, retained verbatim as the reference the indexed
/// [`ServerCluster`] is proven against (property tests) and benchmarked
/// against (`bench_control_plane`). Re-scans every open server per
/// demand.
///
/// Not part of the supported API surface; use [`ServerCluster`].
#[derive(Debug, Clone)]
pub struct NaiveServerCluster {
    shape: ServerShape,
    open: Vec<ResourceVector>,
    used_total: ResourceVector,
    unplaceable: usize,
}

impl NaiveServerCluster {
    /// Creates an empty cluster of the given shape.
    pub fn new(shape: ServerShape) -> Self {
        Self {
            shape,
            open: Vec::new(),
            used_total: ResourceVector::new(),
            unplaceable: 0,
        }
    }

    /// Packs one demand — the seed linear scan.
    pub fn place(&mut self, demand: &ResourceVector, algo: PackAlgo) -> Option<usize> {
        if !demand.fits_in(&self.shape.capacity) {
            self.unplaceable += 1;
            return None;
        }
        let chosen = match algo {
            PackAlgo::FirstFitDecreasing => self.open.iter().position(|free| demand.fits_in(free)),
            PackAlgo::BestFit => self
                .open
                .iter()
                .enumerate()
                .filter(|(_, free)| demand.fits_in(free))
                .min_by_key(|(_, free)| free.saturating_sub(demand).scalar_size())
                .map(|(i, _)| i),
        };
        let idx = match chosen {
            Some(i) => i,
            None => {
                self.open.push(self.shape.capacity.clone());
                self.open.len() - 1
            }
        };
        self.open[idx] = self.open[idx].saturating_sub(demand);
        self.used_total = self.used_total.saturating_add(demand);
        Some(idx)
    }

    /// Bounded placement — the seed full scan.
    pub fn place_bounded(
        &mut self,
        demand: &ResourceVector,
        algo: PackAlgo,
        max_servers: usize,
    ) -> Option<usize> {
        if !demand.fits_in(&self.shape.capacity) {
            self.unplaceable += 1;
            return None;
        }
        let fits_open = self.open.iter().any(|free| demand.fits_in(free));
        if !fits_open && self.open.len() >= max_servers {
            return None;
        }
        self.place(demand, algo)
    }

    /// Packs a whole workload and reports the outcome.
    pub fn pack_all(&mut self, demands: &[ResourceVector], algo: PackAlgo) -> PackOutcome {
        let mut items: Vec<&ResourceVector> = demands.iter().collect();
        if algo == PackAlgo::FirstFitDecreasing {
            items.sort_by_key(|d| std::cmp::Reverse(d.scalar_size()));
        }
        for d in items {
            self.place(d, algo);
        }
        self.outcome()
    }

    /// The current outcome.
    pub fn outcome(&self) -> PackOutcome {
        let provisioned = self.shape.capacity.scaled(self.open.len() as u64);
        let utilization = ResourceKind::ALL
            .into_iter()
            .filter(|k| provisioned.get(*k) > 0)
            .map(|k| (k, self.used_total.get(k), provisioned.get(k)))
            .collect();
        PackOutcome {
            servers_used: self.open.len(),
            unplaceable: self.unplaceable,
            utilization,
        }
    }

    /// Servers opened so far.
    pub fn servers_used(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(cpu: u64, dram: u64) -> ResourceVector {
        ResourceVector::new()
            .with(ResourceKind::Cpu, cpu)
            .with(ResourceKind::Dram, dram)
    }

    #[test]
    fn opens_servers_on_demand() {
        let mut c = ServerCluster::new(ServerShape::standard(0));
        // 64-core servers; three 40-core jobs need three servers (40+40
        // does not fit one).
        for _ in 0..3 {
            assert!(c
                .place(&demand(40, 1024), PackAlgo::FirstFitDecreasing)
                .is_some());
        }
        assert_eq!(c.servers_used(), 3);
    }

    #[test]
    fn small_jobs_share_servers() {
        let mut c = ServerCluster::new(ServerShape::standard(0));
        for _ in 0..8 {
            c.place(&demand(8, 1024), PackAlgo::FirstFitDecreasing);
        }
        assert_eq!(c.servers_used(), 1, "8×8 cores fit one 64-core server");
    }

    #[test]
    fn oversized_demand_unplaceable() {
        let mut c = ServerCluster::new(ServerShape::standard(0));
        assert!(c.place(&demand(100, 0), PackAlgo::BestFit).is_none());
        assert_eq!(c.outcome().unplaceable, 1);
        assert_eq!(c.servers_used(), 0);
    }

    #[test]
    fn gpu_demand_needs_gpu_shape() {
        let mut plain = ServerCluster::new(ServerShape::standard(0));
        let gpu_demand = ResourceVector::new().with(ResourceKind::Gpu, 1);
        assert!(plain.place(&gpu_demand, PackAlgo::BestFit).is_none());
        let mut gpu = ServerCluster::new(ServerShape::standard(8));
        assert!(gpu.place(&gpu_demand, PackAlgo::BestFit).is_some());
    }

    #[test]
    fn best_fit_packs_tighter_or_equal() {
        // A workload where FFD and best-fit may differ; both must place
        // everything and best-fit never uses more servers in this
        // construction.
        let demands: Vec<ResourceVector> = (0..40).map(|i| demand(8 + (i % 5) * 8, 4096)).collect();
        let ffd = ServerCluster::new(ServerShape::standard(0))
            .pack_all(&demands, PackAlgo::FirstFitDecreasing);
        let bf = ServerCluster::new(ServerShape::standard(0)).pack_all(&demands, PackAlgo::BestFit);
        assert_eq!(ffd.unplaceable, 0);
        assert_eq!(bf.unplaceable, 0);
        assert!(ffd.servers_used > 0 && bf.servers_used > 0);
    }

    #[test]
    fn utilization_reflects_stranding() {
        // One 1-core job opens a whole 64-core server: utilization is
        // terrible — the effect UDC's exact-fit allocation removes.
        let mut c = ServerCluster::new(ServerShape::standard(0));
        c.place(&demand(1, 1024), PackAlgo::BestFit);
        let out = c.outcome();
        assert!(out.mean_utilization() < 0.02, "{}", out.mean_utilization());
    }

    #[test]
    fn mean_utilization_empty_cluster_zero() {
        let c = ServerCluster::new(ServerShape::standard(0));
        assert_eq!(c.outcome().mean_utilization(), 0.0);
    }

    #[test]
    fn indexed_matches_naive_on_mixed_workload() {
        // A deterministic mixed workload exercising both algorithms;
        // random traces live in tests/prop_binpack_equiv.rs.
        let demands: Vec<ResourceVector> = (0..200)
            .map(|i| demand(1 + (i * 7) % 63, 512 + (i * 131) % 8192))
            .collect();
        for algo in [PackAlgo::FirstFitDecreasing, PackAlgo::BestFit] {
            let mut fast = ServerCluster::new(ServerShape::standard(0));
            let mut naive = NaiveServerCluster::new(ServerShape::standard(0));
            for d in &demands {
                assert_eq!(fast.place(d, algo), naive.place(d, algo));
            }
            assert_eq!(fast.outcome(), naive.outcome());
        }
    }

    #[test]
    fn zero_demand_is_placed_like_seed() {
        let zero = ResourceVector::new();
        let mut fast = ServerCluster::new(ServerShape::standard(0));
        let mut naive = NaiveServerCluster::new(ServerShape::standard(0));
        // First zero demand opens a server in both, the next reuses it.
        assert_eq!(
            fast.place(&zero, PackAlgo::BestFit),
            naive.place(&zero, PackAlgo::BestFit)
        );
        assert_eq!(
            fast.place(&zero, PackAlgo::FirstFitDecreasing),
            naive.place(&zero, PackAlgo::FirstFitDecreasing)
        );
        assert_eq!(fast.outcome(), naive.outcome());
    }
}

#[cfg(test)]
mod bounded_tests {
    use super::*;

    #[test]
    fn bounded_placement_respects_fleet_cap() {
        let mut c = ServerCluster::new(ServerShape::standard(0));
        let big = ResourceVector::new().with(ResourceKind::Cpu, 40);
        assert!(c.place_bounded(&big, PackAlgo::BestFit, 2).is_some());
        assert!(c.place_bounded(&big, PackAlgo::BestFit, 2).is_some());
        // Fleet full; a third 40-core job fits no open server.
        assert!(c.place_bounded(&big, PackAlgo::BestFit, 2).is_none());
        assert_eq!(c.servers_used(), 2);
        // A small job still fits the open servers' leftovers.
        let small = ResourceVector::new().with(ResourceKind::Cpu, 8);
        assert!(c.place_bounded(&small, PackAlgo::BestFit, 2).is_some());
    }
}
