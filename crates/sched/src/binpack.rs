//! The traditional-server baseline: bin-packing module demands onto
//! fixed server shapes.
//!
//! §3.2 contrasts disaggregated pool allocation with "a bin-packing
//! problem with traditional servers"; experiments E3/E4 use this module
//! as the today's-cloud side of that comparison. LegoOS \[36\] reported
//! ~2× utilization improvement from abandoning server boundaries — the
//! shape this baseline lets us reproduce.

use serde::{Deserialize, Serialize};
use udc_spec::{ResourceKind, ResourceVector};

/// A server shape: the multi-dimensional capacity of one machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerShape {
    /// Capacity per resource kind.
    pub capacity: ResourceVector,
}

impl ServerShape {
    /// A typical 2021 two-socket server: 64 cores, 256 GiB DRAM,
    /// 2 TiB SSD, optionally `gpus` GPUs.
    pub fn standard(gpus: u64) -> Self {
        let mut v = ResourceVector::new()
            .with(ResourceKind::Cpu, 64)
            .with(ResourceKind::Dram, 256 * 1024)
            .with(ResourceKind::Ssd, 2 * 1024 * 1024);
        if gpus > 0 {
            v.set(ResourceKind::Gpu, gpus);
        }
        Self { capacity: v }
    }
}

/// Packing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackAlgo {
    /// First-fit over items sorted by decreasing scalar size.
    FirstFitDecreasing,
    /// Best-fit (least total leftover across dimensions).
    BestFit,
}

/// The outcome of packing a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackOutcome {
    /// Servers opened.
    pub servers_used: usize,
    /// Demands that did not fit any server shape at all.
    pub unplaceable: usize,
    /// Aggregate utilization per kind: (kind, used, provisioned).
    pub utilization: Vec<(ResourceKind, u64, u64)>,
}

impl PackOutcome {
    /// Mean utilization across kinds that were provisioned, in \[0, 1\].
    pub fn mean_utilization(&self) -> f64 {
        let mut fractions = Vec::new();
        for (_, used, cap) in &self.utilization {
            if *cap > 0 {
                fractions.push(*used as f64 / *cap as f64);
            }
        }
        if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        }
    }
}

/// A cluster of identical servers, opened on demand (the provider
/// provisions a server whenever the workload does not fit the open
/// ones).
#[derive(Debug, Clone)]
pub struct ServerCluster {
    shape: ServerShape,
    /// Free capacity of each opened server.
    open: Vec<ResourceVector>,
    used_total: ResourceVector,
    unplaceable: usize,
}

impl ServerCluster {
    /// Creates an empty cluster of the given shape.
    pub fn new(shape: ServerShape) -> Self {
        Self {
            shape,
            open: Vec::new(),
            used_total: ResourceVector::new(),
            unplaceable: 0,
        }
    }

    /// Packs one demand, opening a new server if necessary. Returns the
    /// server index, or `None` when the demand exceeds the shape itself.
    pub fn place(&mut self, demand: &ResourceVector, algo: PackAlgo) -> Option<usize> {
        if !demand.fits_in(&self.shape.capacity) {
            self.unplaceable += 1;
            return None;
        }
        let chosen = match algo {
            PackAlgo::FirstFitDecreasing => self.open.iter().position(|free| demand.fits_in(free)),
            PackAlgo::BestFit => self
                .open
                .iter()
                .enumerate()
                .filter(|(_, free)| demand.fits_in(free))
                .min_by_key(|(_, free)| free.saturating_sub(demand).scalar_size())
                .map(|(i, _)| i),
        };
        let idx = match chosen {
            Some(i) => i,
            None => {
                self.open.push(self.shape.capacity.clone());
                self.open.len() - 1
            }
        };
        self.open[idx] = self.open[idx].saturating_sub(demand);
        self.used_total = self.used_total.saturating_add(demand);
        Some(idx)
    }

    /// Packs one demand like [`ServerCluster::place`], but refuses to
    /// grow the fleet beyond `max_servers` — the fixed-fleet admission
    /// model of experiment E4. Returns `None` (without side effects)
    /// when the demand fits no open server and the fleet is at its cap.
    pub fn place_bounded(
        &mut self,
        demand: &ResourceVector,
        algo: PackAlgo,
        max_servers: usize,
    ) -> Option<usize> {
        if !demand.fits_in(&self.shape.capacity) {
            self.unplaceable += 1;
            return None;
        }
        let fits_open = self.open.iter().any(|free| demand.fits_in(free));
        if !fits_open && self.open.len() >= max_servers {
            return None;
        }
        self.place(demand, algo)
    }

    /// Packs a whole workload (sorted decreasing for FFD; as-given for
    /// best-fit) and reports the outcome.
    pub fn pack_all(&mut self, demands: &[ResourceVector], algo: PackAlgo) -> PackOutcome {
        let mut items: Vec<&ResourceVector> = demands.iter().collect();
        if algo == PackAlgo::FirstFitDecreasing {
            items.sort_by_key(|d| std::cmp::Reverse(d.scalar_size()));
        }
        for d in items {
            self.place(d, algo);
        }
        self.outcome()
    }

    /// The current outcome.
    pub fn outcome(&self) -> PackOutcome {
        let provisioned = self.shape.capacity.scaled(self.open.len() as u64);
        let utilization = ResourceKind::ALL
            .into_iter()
            .filter(|k| provisioned.get(*k) > 0)
            .map(|k| (k, self.used_total.get(k), provisioned.get(k)))
            .collect();
        PackOutcome {
            servers_used: self.open.len(),
            unplaceable: self.unplaceable,
            utilization,
        }
    }

    /// Servers opened so far.
    pub fn servers_used(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(cpu: u64, dram: u64) -> ResourceVector {
        ResourceVector::new()
            .with(ResourceKind::Cpu, cpu)
            .with(ResourceKind::Dram, dram)
    }

    #[test]
    fn opens_servers_on_demand() {
        let mut c = ServerCluster::new(ServerShape::standard(0));
        // 64-core servers; three 40-core jobs need three servers (40+40
        // does not fit one).
        for _ in 0..3 {
            assert!(c
                .place(&demand(40, 1024), PackAlgo::FirstFitDecreasing)
                .is_some());
        }
        assert_eq!(c.servers_used(), 3);
    }

    #[test]
    fn small_jobs_share_servers() {
        let mut c = ServerCluster::new(ServerShape::standard(0));
        for _ in 0..8 {
            c.place(&demand(8, 1024), PackAlgo::FirstFitDecreasing);
        }
        assert_eq!(c.servers_used(), 1, "8×8 cores fit one 64-core server");
    }

    #[test]
    fn oversized_demand_unplaceable() {
        let mut c = ServerCluster::new(ServerShape::standard(0));
        assert!(c.place(&demand(100, 0), PackAlgo::BestFit).is_none());
        assert_eq!(c.outcome().unplaceable, 1);
        assert_eq!(c.servers_used(), 0);
    }

    #[test]
    fn gpu_demand_needs_gpu_shape() {
        let mut plain = ServerCluster::new(ServerShape::standard(0));
        let gpu_demand = ResourceVector::new().with(ResourceKind::Gpu, 1);
        assert!(plain.place(&gpu_demand, PackAlgo::BestFit).is_none());
        let mut gpu = ServerCluster::new(ServerShape::standard(8));
        assert!(gpu.place(&gpu_demand, PackAlgo::BestFit).is_some());
    }

    #[test]
    fn best_fit_packs_tighter_or_equal() {
        // A workload where FFD and best-fit may differ; both must place
        // everything and best-fit never uses more servers in this
        // construction.
        let demands: Vec<ResourceVector> = (0..40).map(|i| demand(8 + (i % 5) * 8, 4096)).collect();
        let ffd = ServerCluster::new(ServerShape::standard(0))
            .pack_all(&demands, PackAlgo::FirstFitDecreasing);
        let bf = ServerCluster::new(ServerShape::standard(0)).pack_all(&demands, PackAlgo::BestFit);
        assert_eq!(ffd.unplaceable, 0);
        assert_eq!(bf.unplaceable, 0);
        assert!(ffd.servers_used > 0 && bf.servers_used > 0);
    }

    #[test]
    fn utilization_reflects_stranding() {
        // One 1-core job opens a whole 64-core server: utilization is
        // terrible — the effect UDC's exact-fit allocation removes.
        let mut c = ServerCluster::new(ServerShape::standard(0));
        c.place(&demand(1, 1024), PackAlgo::BestFit);
        let out = c.outcome();
        assert!(out.mean_utilization() < 0.02, "{}", out.mean_utilization());
    }

    #[test]
    fn mean_utilization_empty_cluster_zero() {
        let c = ServerCluster::new(ServerShape::standard(0));
        assert_eq!(c.outcome().mean_utilization(), 0.0);
    }
}

#[cfg(test)]
mod bounded_tests {
    use super::*;

    #[test]
    fn bounded_placement_respects_fleet_cap() {
        let mut c = ServerCluster::new(ServerShape::standard(0));
        let big = ResourceVector::new().with(ResourceKind::Cpu, 40);
        assert!(c.place_bounded(&big, PackAlgo::BestFit, 2).is_some());
        assert!(c.place_bounded(&big, PackAlgo::BestFit, 2).is_some());
        // Fleet full; a third 40-core job fits no open server.
        assert!(c.place_bounded(&big, PackAlgo::BestFit, 2).is_none());
        assert_eq!(c.servers_used(), 2);
        // A small job still fits the open servers' leftovers.
        let small = ResourceVector::new().with(ResourceKind::Cpu, 8);
        assert!(c.place_bounded(&small, PackAlgo::BestFit, 2).is_some());
    }
}
