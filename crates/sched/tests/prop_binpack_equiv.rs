//! Observable-equivalence proof for the indexed bin-packer: the seed's
//! linear-scan cluster (`NaiveServerCluster`, kept verbatim) and the
//! indexed `ServerCluster` place random demand streams side by side.
//! Every `place`/`place_bounded` decision and the final outcome must
//! match for both algorithms, so the residual index and the segment
//! tree are pure speedups, never behavior changes.

use proptest::prelude::*;
use udc_sched::{NaiveServerCluster, PackAlgo, ServerCluster, ServerShape};
use udc_spec::{ResourceKind, ResourceVector};

/// Demands spanning the interesting regimes: tiny, near-server-sized,
/// over-sized (unplaceable), zero-dimension heavy, and all-zero.
fn demand(cpu: u64, dram: u64, gpu: u64, ssd: u64) -> ResourceVector {
    ResourceVector::new()
        .with(ResourceKind::Cpu, cpu)
        .with(ResourceKind::Dram, dram)
        .with(ResourceKind::Gpu, gpu)
        .with(ResourceKind::Ssd, ssd)
}

proptest! {
    /// Step-by-step placement parity for both algorithms.
    #[test]
    fn indexed_cluster_matches_naive(
        stream in prop::collection::vec(
            (0u64..80, 0u64..300_000, 0u64..4, 0u64..2_500_000),
            1..120,
        ),
        bestfit in any::<bool>(),
    ) {
        let algo = if bestfit { PackAlgo::BestFit } else { PackAlgo::FirstFitDecreasing };
        let shape = ServerShape::standard(2);
        let mut naive = NaiveServerCluster::new(shape.clone());
        let mut indexed = ServerCluster::new(shape);
        for (cpu, dram, gpu, ssd) in stream {
            let d = demand(cpu, dram, gpu, ssd);
            prop_assert_eq!(
                naive.place(&d, algo),
                indexed.place(&d, algo),
                "place diverged"
            );
        }
        prop_assert_eq!(naive.outcome(), indexed.outcome(), "outcome diverged");
        prop_assert_eq!(naive.servers_used(), indexed.servers_used());
    }

    /// Fixed-fleet admission (`place_bounded`) agrees too — including
    /// the no-side-effect rejection when the fleet is capped.
    #[test]
    fn bounded_placement_matches_naive(
        stream in prop::collection::vec(
            (0u64..80, 0u64..300_000, 0u64..4, 0u64..2_500_000),
            1..120,
        ),
        cap in 1usize..6,
        bestfit in any::<bool>(),
    ) {
        let algo = if bestfit { PackAlgo::BestFit } else { PackAlgo::FirstFitDecreasing };
        let shape = ServerShape::standard(2);
        let mut naive = NaiveServerCluster::new(shape.clone());
        let mut indexed = ServerCluster::new(shape);
        for (cpu, dram, gpu, ssd) in stream {
            let d = demand(cpu, dram, gpu, ssd);
            prop_assert_eq!(
                naive.place_bounded(&d, algo, cap),
                indexed.place_bounded(&d, algo, cap),
                "place_bounded diverged"
            );
        }
        prop_assert_eq!(naive.outcome(), indexed.outcome());
    }

    /// Whole-workload packing (the FFD pre-sort path) agrees.
    #[test]
    fn pack_all_matches_naive(
        stream in prop::collection::vec(
            (0u64..80, 0u64..300_000, 0u64..4, 0u64..2_500_000),
            0..120,
        ),
        bestfit in any::<bool>(),
    ) {
        let algo = if bestfit { PackAlgo::BestFit } else { PackAlgo::FirstFitDecreasing };
        let demands: Vec<ResourceVector> =
            stream.into_iter().map(|(c, d, g, s)| demand(c, d, g, s)).collect();
        let shape = ServerShape::standard(2);
        prop_assert_eq!(
            NaiveServerCluster::new(shape.clone()).pack_all(&demands, algo),
            ServerCluster::new(shape).pack_all(&demands, algo)
        );
    }
}
