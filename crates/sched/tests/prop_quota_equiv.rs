//! Observable-equivalence proof for quota-gated admission: a scheduler
//! carrying an **unlimited-plan** quota gate must behave exactly like
//! the ungated seed scheduler — same placements, same failures, never a
//! `QuotaDenied` — across random application streams. The gate is a
//! pure pre-placement filter; when the plan doesn't bind it must be
//! invisible.

use proptest::prelude::*;
use udc_economics::{demand_of_app, PlanSpec, QuotaGate};
use udc_hal::{Datacenter, DatacenterConfig, FabricConfig, PoolConfig};
use udc_sched::{SchedError, SchedOptions, Scheduler};
use udc_spec::prelude::*;

fn small_dc() -> Datacenter {
    Datacenter::new(DatacenterConfig {
        pools: vec![
            PoolConfig {
                kind: ResourceKind::Cpu,
                devices: 8,
                capacity_per_device: 16,
            },
            PoolConfig {
                kind: ResourceKind::Gpu,
                devices: 2,
                capacity_per_device: 4,
            },
            PoolConfig {
                kind: ResourceKind::Dram,
                devices: 4,
                capacity_per_device: 64 * 1024,
            },
            PoolConfig {
                kind: ResourceKind::Ssd,
                devices: 4,
                capacity_per_device: 1024 * 1024,
            },
        ],
        racks: 4,
        fabric: FabricConfig::default(),
    })
}

#[derive(Debug, Clone)]
struct GenModule {
    is_data: bool,
    cpu: u64,
    gpu: u64,
    dram: u64,
    bytes: u64,
    replication: u32,
}

fn arb_module() -> impl Strategy<Value = GenModule> {
    (
        any::<bool>(),
        0u64..6,
        0u64..2,
        0u64..8192,
        1u64..(64 << 20),
        1u32..4,
    )
        .prop_map(|(is_data, cpu, gpu, dram, bytes, replication)| GenModule {
            is_data,
            cpu,
            gpu,
            dram,
            bytes,
            replication,
        })
}

fn build_app(name: &str, mods: &[GenModule]) -> AppSpec {
    let mut app = AppSpec::new(name);
    for (i, g) in mods.iter().enumerate() {
        let mod_name = format!("M{i}");
        if g.is_data {
            app.add_data(
                DataSpec::new(&mod_name)
                    .with_bytes(g.bytes)
                    .with_dist(DistributedAspect::default().replication(g.replication)),
            );
        } else {
            let mut r = ResourceAspect::default();
            if g.cpu > 0 {
                r = r.with_demand(ResourceKind::Cpu, g.cpu);
            }
            if g.gpu > 0 {
                r = r.with_demand(ResourceKind::Gpu, g.gpu);
            }
            if g.dram > 0 {
                r = r.with_demand(ResourceKind::Dram, g.dram);
            }
            app.add_task(TaskSpec::new(&mod_name).with_resource(r).with_work(10));
        }
    }
    app
}

/// Placement fingerprint for comparison: module → (device, kind), or
/// the error's display string.
fn fingerprint(
    result: Result<udc_sched::AppPlacement, SchedError>,
) -> Result<Vec<(ModuleId, udc_hal::DeviceId)>, String> {
    result
        .map(|p| {
            p.modules
                .iter()
                .map(|(id, m)| (id.clone(), m.primary_device))
                .collect()
        })
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equivalence over a stream of apps driven to capacity: gated
    /// (unlimited plan) and ungated schedulers agree on every single
    /// outcome, and the gate never issues a quota denial.
    #[test]
    fn unlimited_quota_gate_is_observably_equivalent_to_seed(
        apps in prop::collection::vec(
            prop::collection::vec(arb_module(), 1..6),
            1..8,
        ),
    ) {
        let mut gate = QuotaGate::new();
        gate.open_account("tenant", PlanSpec::unlimited("open"), 0);
        let shared = udc_economics::shared(gate);

        let mut dc_seed = small_dc();
        let mut dc_gated = small_dc();
        let mut sched_seed = Scheduler::new(SchedOptions::default());
        let mut sched_gated = Scheduler::new(SchedOptions::default());
        sched_gated.set_quota_gate(Some(shared.clone()));

        let mut committed = ResourceVector::new();
        for (i, mods) in apps.iter().enumerate() {
            let app = build_app(&format!("app{i}"), mods);
            prop_assume!(app.validate().is_ok());
            let seed = fingerprint(sched_seed.place_app(&mut dc_seed, &app));
            let gated = fingerprint(sched_gated.place_app(&mut dc_gated, &app));
            if let Err(msg) = &gated {
                prop_assert!(
                    !msg.contains("quota"),
                    "unlimited plan must never deny: {msg}"
                );
            }
            prop_assert_eq!(&seed, &gated, "outcome diverged on app{}", i);
            // The gate's book-keeping still tracks admitted footprints.
            if gated.is_ok() {
                committed.saturating_add_assign(&demand_of_app(&app));
            }
        }
        {
            let g = shared.lock().unwrap();
            let acct = g.account("tenant").unwrap();
            for (kind, units) in committed.iter() {
                prop_assert_eq!(acct.in_use.get(kind), units, "in_use drifted for {}", kind);
            }
        }
        // Both datacenters are in identical utilization states.
        for kind in ResourceKind::ALL {
            let a = dc_seed.pool(kind).map(|p| p.total_used()).unwrap_or(0);
            let b = dc_gated.pool(kind).map(|p| p.total_used()).unwrap_or(0);
            prop_assert_eq!(a, b, "pool usage diverged for {}", kind);
        }
    }
}
