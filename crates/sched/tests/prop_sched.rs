//! Property-based tests for the scheduler: placements never overcommit
//! devices, exact-fit allocations match demands, release is complete,
//! and exclusive placements stay exclusive — across random applications.

use proptest::prelude::*;
use udc_hal::{Datacenter, DatacenterConfig, FabricConfig, PoolConfig};
use udc_sched::{SchedOptions, Scheduler};
use udc_spec::prelude::*;

fn small_dc() -> Datacenter {
    Datacenter::new(DatacenterConfig {
        pools: vec![
            PoolConfig {
                kind: ResourceKind::Cpu,
                devices: 8,
                capacity_per_device: 16,
            },
            PoolConfig {
                kind: ResourceKind::Gpu,
                devices: 2,
                capacity_per_device: 4,
            },
            PoolConfig {
                kind: ResourceKind::Dram,
                devices: 4,
                capacity_per_device: 64 * 1024,
            },
            PoolConfig {
                kind: ResourceKind::Ssd,
                devices: 4,
                capacity_per_device: 1024 * 1024,
            },
        ],
        racks: 4,
        fabric: FabricConfig::default(),
    })
}

#[derive(Debug, Clone)]
struct GenModule {
    is_data: bool,
    cpu: u64,
    gpu: u64,
    dram: u64,
    bytes: u64,
    replication: u32,
    isolation: Option<IsolationLevel>,
}

fn arb_module() -> impl Strategy<Value = GenModule> {
    (
        any::<bool>(),
        0u64..6,
        0u64..2,
        0u64..8192,
        1u64..(64 << 20),
        1u32..4,
        prop_oneof![
            Just(None),
            Just(Some(IsolationLevel::Weak)),
            Just(Some(IsolationLevel::Medium)),
            Just(Some(IsolationLevel::Strong)),
        ],
    )
        .prop_map(
            |(is_data, cpu, gpu, dram, bytes, replication, isolation)| GenModule {
                is_data,
                cpu,
                gpu,
                dram,
                bytes,
                replication,
                isolation,
            },
        )
}

fn build_app(mods: &[GenModule]) -> AppSpec {
    let mut app = AppSpec::new("gen");
    let mut prev_task: Option<String> = None;
    for (i, g) in mods.iter().enumerate() {
        let name = format!("M{i}");
        if g.is_data {
            app.add_data(
                DataSpec::new(&name)
                    .with_bytes(g.bytes)
                    .with_dist(DistributedAspect::default().replication(g.replication)),
            );
        } else {
            let mut r = ResourceAspect::default();
            if g.cpu > 0 {
                r = r.with_demand(ResourceKind::Cpu, g.cpu);
            }
            if g.gpu > 0 {
                r = r.with_demand(ResourceKind::Gpu, g.gpu);
            }
            if g.dram > 0 {
                r = r.with_demand(ResourceKind::Dram, g.dram);
            }
            let mut t = TaskSpec::new(&name).with_resource(r).with_work(10);
            if let Some(level) = g.isolation {
                t = t.with_exec_env(ExecEnvAspect::isolation(level));
            }
            app.add_task(t);
            if let Some(prev) = &prev_task {
                app.add_edge(prev, &name, EdgeKind::Dependency).unwrap();
            }
            prev_task = Some(name);
        }
    }
    app
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the app, a successful placement never overcommits any
    /// device, honours exact demands, and releases completely.
    #[test]
    fn placement_invariants(mods in prop::collection::vec(arb_module(), 1..8)) {
        let app = build_app(&mods);
        prop_assume!(app.validate().is_ok());
        let mut dc = small_dc();
        let mut sched = Scheduler::new(SchedOptions::default());
        let result = sched.place_app(&mut dc, &app);
        // Devices never exceed capacity, success or failure.
        for kind in ResourceKind::ALL {
            if let Some(pool) = dc.pool(kind) {
                for d in pool.devices() {
                    prop_assert!(d.used() <= d.capacity, "{kind} overcommitted");
                }
            }
        }
        if let Ok(placement) = result {
            // Exact fit: allocated == demanded for explicit task demands.
            for (i, g) in mods.iter().enumerate() {
                if g.is_data {
                    continue;
                }
                let p = &placement.modules[&udc_spec::ModuleId::from(format!("M{i}").as_str())];
                if g.cpu > 0 || g.gpu > 0 {
                    let compute_alloc: u64 = p
                        .allocations
                        .iter()
                        .filter(|a| a.kind.is_compute())
                        .map(|a| a.total_units())
                        .sum();
                    prop_assert!(compute_alloc >= g.cpu.max(g.gpu));
                }
                if g.dram > 0 {
                    let dram: u64 = p
                        .allocations
                        .iter()
                        .filter(|a| a.kind == ResourceKind::Dram)
                        .map(|a| a.total_units())
                        .sum();
                    prop_assert_eq!(dram, g.dram, "exact DRAM fit");
                }
            }
            // Data replicas land on distinct devices.
            for (i, g) in mods.iter().enumerate() {
                if !g.is_data {
                    continue;
                }
                let p = &placement.modules[&udc_spec::ModuleId::from(format!("M{i}").as_str())];
                let mut devs = p.replica_devices.clone();
                devs.sort();
                devs.dedup();
                prop_assert_eq!(devs.len() as u32, g.replication, "replica anti-affinity");
            }
            // Release restores a pristine datacenter.
            sched.release_app(&mut dc, &placement);
            for kind in ResourceKind::ALL {
                if let Some(pool) = dc.pool(kind) {
                    prop_assert_eq!(pool.total_used(), 0, "leaked {}", kind);
                }
            }
        }
    }

    /// Placement is deterministic: the same app on a fresh datacenter
    /// lands on the same devices.
    #[test]
    fn placement_deterministic(mods in prop::collection::vec(arb_module(), 1..6)) {
        let app = build_app(&mods);
        prop_assume!(app.validate().is_ok());
        let place = || {
            let mut dc = small_dc();
            let mut sched = Scheduler::new(SchedOptions::default());
            sched.place_app(&mut dc, &app).map(|p| {
                p.modules
                    .iter()
                    .map(|(id, m)| (id.clone(), m.primary_device, m.placed_kind))
                    .collect::<Vec<_>>()
            })
        };
        let a = place();
        let b = place();
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "non-deterministic outcome: {other:?}"),
        }
    }
}
