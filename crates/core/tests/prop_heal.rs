//! Property-based tests for the self-healing loop: whatever the app
//! shape and whatever the (seeded) failure schedule, driving
//! [`UdcCloud::advance`] through the whole schedule leaves every
//! healthy module's allocations on alive devices, ends converged or
//! explicitly degraded, and keeps the deployment verifiable.

use std::collections::BTreeSet;

use proptest::prelude::*;
use udc_core::{CloudConfig, ModuleHealth, UdcCloud};
use udc_hal::{DatacenterConfig, DeviceId, FailurePlan, PoolConfig};
use udc_spec::prelude::*;

const HORIZON_US: u64 = 1_000_000;
const STEP_US: u64 = 250_000;

/// A deliberately tight datacenter so high crash rates can exhaust
/// capacity and exercise the degraded path, not just clean repairs.
fn small_dc_config() -> DatacenterConfig {
    DatacenterConfig {
        pools: vec![
            PoolConfig {
                kind: ResourceKind::Cpu,
                devices: 6,
                capacity_per_device: 8,
            },
            PoolConfig {
                kind: ResourceKind::Dram,
                devices: 4,
                capacity_per_device: 64 * 1024,
            },
            PoolConfig {
                kind: ResourceKind::Ssd,
                devices: 4,
                capacity_per_device: 1024 * 1024,
            },
        ],
        ..Default::default()
    }
}

#[derive(Debug, Clone)]
struct GenModule {
    is_data: bool,
    cpu: u64,
    bytes: u64,
    replication: u32,
    handling: Option<FailureHandling>,
}

fn arb_module() -> impl Strategy<Value = GenModule> {
    (
        any::<bool>(),
        1u64..4,
        1u64..(8 << 20),
        1u32..3,
        prop_oneof![
            Just(None),
            Just(Some(FailureHandling::Reexecute)),
            Just(Some(FailureHandling::Checkpoint { interval_ms: 10 })),
        ],
    )
        .prop_map(|(is_data, cpu, bytes, replication, handling)| GenModule {
            is_data,
            cpu,
            bytes,
            replication,
            handling,
        })
}

fn build_app(mods: &[GenModule]) -> AppSpec {
    let mut app = AppSpec::new("gen-heal");
    for (i, g) in mods.iter().enumerate() {
        let name = format!("M{i}");
        let mut dist = DistributedAspect::default();
        if let Some(h) = g.handling {
            dist = dist.failure(h);
        }
        if g.is_data {
            app.add_data(
                DataSpec::new(&name)
                    .with_bytes(g.bytes)
                    .with_dist(dist.replication(g.replication)),
            );
        } else {
            app.add_task(
                TaskSpec::new(&name)
                    .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, g.cpu))
                    .with_work(10)
                    .with_dist(dist),
            );
        }
    }
    app
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random app x random failure plan: after the full schedule has
    /// fired and the repair loop has drained, no healthy module holds
    /// an allocation on a dead device, the health state is either
    /// converged or explicitly degraded, and a converged deployment
    /// still passes full verification.
    #[test]
    fn healing_never_leaves_allocations_on_dead_devices(
        mods in prop::collection::vec(arb_module(), 1..6),
        crash_prob in 0.05f64..0.5,
        repair_delay_us in 1_000u64..2_000_000,
        seed in 0u64..1_000,
    ) {
        let app = build_app(&mods);
        prop_assume!(app.validate().is_ok());
        let mut cloud = UdcCloud::new(CloudConfig {
            datacenter: small_dc_config(),
            ..Default::default()
        });
        cloud.enable_telemetry();
        let Ok(mut dep) = cloud.submit(&app) else {
            // The tight datacenter cannot place every generated app;
            // healing is only defined over deployed apps.
            return Ok(());
        };

        let t0 = cloud.datacenter().clock().now();
        let devices = cloud.datacenter().device_ids();
        cloud.datacenter_mut().set_failure_plan(
            FailurePlan::random(&devices, crash_prob, HORIZON_US, repair_delay_us, seed)
                .shifted(t0),
        );

        let mut dead: BTreeSet<DeviceId> = BTreeSet::new();
        let deadline = HORIZON_US + repair_delay_us + 12_000_000;
        let mut elapsed = 0u64;
        while elapsed < deadline {
            let report = cloud.advance(&mut dep, STEP_US);
            elapsed += STEP_US;
            dead.extend(report.crashed_devices.iter().copied());
            for d in &report.repaired_devices {
                dead.remove(d);
            }

            // Interval invariant: healthy modules live on live hardware.
            for (id, p) in &dep.placement.modules {
                match dep.health.module(id) {
                    ModuleHealth::Healthy => {
                        prop_assert!(
                            !p.allocations.is_empty(),
                            "healthy module {id} lost its allocations"
                        );
                        for a in &p.allocations {
                            for s in &a.slices {
                                prop_assert!(
                                    !dead.contains(&s.device),
                                    "healthy module {id} holds dev{} which is dead",
                                    s.device.0
                                );
                            }
                        }
                    }
                    // Evicted (repairing or degraded) modules must hold
                    // nothing: eviction precedes re-placement.
                    _ => prop_assert!(
                        p.allocations.is_empty(),
                        "evicted module {id} still holds allocations"
                    ),
                }
            }

            if elapsed > HORIZON_US + repair_delay_us
                && report.is_quiet()
                && dep.health.repairing_modules().is_empty()
            {
                break;
            }
        }
        prop_assert!(dead.is_empty(), "plan must repair every crashed device");

        // Terminal invariant: converged, or explicitly degraded.
        let degraded = dep.health.degraded_modules();
        prop_assert!(dep.health.repairing_modules().is_empty(), "repair still in flight");
        prop_assert!(
            dep.health.is_converged() || !degraded.is_empty(),
            "neither converged nor degraded"
        );
        if dep.health.is_converged() {
            let verification = cloud.verify_deployment(&dep);
            prop_assert!(
                verification.all_fulfilled(),
                "post-heal verification failed"
            );
        }
        cloud.teardown(&mut dep);
    }
}
