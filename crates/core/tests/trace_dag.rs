//! Acceptance test for causal tracing: a single `Cloud::submit` of the
//! paper's medical pipeline must reconstruct as ONE connected span DAG
//! crossing every control-plane layer (core → sched → hal → isolate),
//! with zero orphans and a non-empty decision audit that explains at
//! least one rejected candidate.

use std::collections::{BTreeMap, BTreeSet};
use udc_core::{CloudConfig, UdcCloud};
use udc_workload::medical_pipeline;

#[test]
fn single_submit_yields_one_connected_span_dag_across_layers() {
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let tel = cloud.enable_telemetry();
    let dep = cloud.submit(&medical_pipeline()).expect("placement fits");
    assert!(!dep.placement.modules.is_empty());

    let snap = tel.snapshot();

    // Exactly one trace was minted, rooted at cloud.submit.
    let traces: BTreeSet<u64> = snap.spans.iter().filter_map(|s| s.trace).collect();
    assert_eq!(traces.len(), 1, "submit must mint exactly one trace");
    let trace = *traces.iter().next().unwrap();

    let in_trace: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.trace == Some(trace))
        .collect();
    let roots: Vec<_> = in_trace.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one root span per trace");
    assert_eq!(roots[0].name, "cloud.submit");

    // Zero orphans: every parent pointer resolves to a span in the same
    // trace, and every span is reachable from the root.
    let by_id: BTreeMap<u32, &udc_telemetry::SpanRecord> =
        in_trace.iter().map(|s| (s.id, *s)).collect();
    for s in &in_trace {
        if let Some(p) = s.parent {
            let parent = by_id
                .get(&p)
                .unwrap_or_else(|| panic!("span {} ({}) has orphan parent {p}", s.id, s.name));
            assert_eq!(parent.trace, Some(trace), "parent crosses traces");
        }
    }
    let mut reachable: BTreeSet<u32> = BTreeSet::new();
    reachable.insert(roots[0].id);
    let mut grew = true;
    while grew {
        grew = false;
        for s in &in_trace {
            if !reachable.contains(&s.id)
                && s.parent.map(|p| reachable.contains(&p)).unwrap_or(false)
            {
                reachable.insert(s.id);
                grew = true;
            }
        }
    }
    assert_eq!(
        reachable.len(),
        in_trace.len(),
        "disconnected spans in trace"
    );

    // The DAG crosses every control-plane layer.
    let names: BTreeSet<&str> = in_trace.iter().map(|s| s.name.as_str()).collect();
    for required in [
        "cloud.submit",
        "spec.validate",
        "sched.place",
        "sched.place_module",
        "hal.pool.allocate",
        "isolate.acquire",
        "isolate.launch",
    ] {
        assert!(names.contains(required), "missing span {required}");
    }

    // All spans closed (RAII guards fired on every path).
    assert!(
        in_trace.iter().all(|s| s.end_us.is_some()),
        "unclosed span in trace"
    );

    // The decision audit explains the placement: records exist, they
    // carry the submit trace, and at least one losing candidate has a
    // non-empty machine-readable reason.
    assert!(!snap.decisions.is_empty(), "no decision records");
    assert!(snap
        .decisions
        .iter()
        .all(|d| d.trace == Some(trace) || d.trace.is_none()));
    let reject = snap
        .decisions
        .iter()
        .find(|d| !d.accepted)
        .expect("at least one rejected candidate");
    assert!(!reject.reason.as_str().is_empty());
    assert!(!reject.candidate.is_empty());
}
