//! End-to-end observability: run the paper's medical pipeline (Fig. 2)
//! with telemetry enabled and check the whole substrate lights up —
//! per-module utilization counters, cold-start histograms, a nested
//! span tree, flight events, and a parseable JSON export.

use udc_core::{CloudConfig, UdcCloud};
use udc_telemetry::{EventKind, Labels};
use udc_workload::medical_pipeline;

#[test]
fn medical_pipeline_produces_full_telemetry_export() {
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let tel = cloud.enable_telemetry();

    let dep = cloud.submit(&medical_pipeline()).expect("placement fits");
    let report = cloud.run(&dep);
    assert!(report.makespan_us > 0);

    // Per-module utilization counters exist for every placed module.
    for id in dep.placement.modules.keys() {
        let labels = Labels::module("tenant", id.as_str());
        assert!(
            tel.counter("core.module_window_us", &labels) > 0,
            "{id} has no holding window recorded"
        );
        assert!(
            tel.counter("core.module_unit_us", &labels) > 0,
            "{id} has no unit-time recorded"
        );
    }
    // Tiny modules can legitimately round to a zero bill; in aggregate
    // the run must have billed something.
    let billed_total: u64 = dep
        .placement
        .modules
        .keys()
        .map(|id| {
            tel.counter(
                "core.billed_microdollars",
                &Labels::module("tenant", id.as_str()),
            )
        })
        .sum();
    assert!(billed_total > 0);

    // The warm pool is disabled by default, so every start was cold and
    // the cold-start histogram must be populated.
    let cold = tel
        .histogram("isolate.cold_start_us", &Labels::none())
        .expect("cold-start histogram exists");
    assert_eq!(cold.count, dep.placement.modules.len() as u64);
    assert!(cold.min > 0 && cold.p50 <= cold.p99 && cold.p99 <= cold.max);

    let snap = tel.snapshot();

    // Span tree: sched.place nests under cloud.submit; cloud.run is a
    // separate root; all spans are closed.
    let submit = snap
        .spans
        .iter()
        .find(|s| s.name == "cloud.submit")
        .expect("submit span");
    let place = snap
        .spans
        .iter()
        .find(|s| s.name == "sched.place")
        .expect("place span");
    assert_eq!(place.parent, Some(submit.id));
    assert!(snap
        .spans
        .iter()
        .any(|s| s.name == "cloud.run" && s.parent.is_none()));
    assert!(snap.spans.iter().all(|s| s.end_us.is_some()));

    // Flight recorder captured the control-plane decisions.
    assert!(snap.events.iter().any(|e| e.kind == EventKind::Submit));
    assert!(snap.events.iter().any(|e| e.kind == EventKind::Placement));
    assert!(snap.events.iter().any(|e| e.kind == EventKind::ColdStart));

    // The export is valid JSON with every section present.
    let path = std::env::temp_dir().join("udc_medical_telemetry_test.json");
    let written = cloud.export_telemetry(&path).expect("export writes");
    let text = std::fs::read_to_string(&written).expect("file exists");
    let v: serde_json::Value = serde_json::from_str(&text).expect("export parses");
    for section in ["counters", "gauges", "histograms", "spans", "events"] {
        let arr = v.get(section).and_then(|s| s.as_array());
        assert!(
            arr.map(|a| !a.is_empty()).unwrap_or(false),
            "export section {section} empty or missing"
        );
    }
    let _ = std::fs::remove_file(written);
}

#[test]
fn fabric_and_pool_series_populate_during_run() {
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let tel = cloud.enable_telemetry();
    let dep = cloud.submit(&medical_pipeline()).expect("placement fits");
    cloud.run(&dep);

    // Access edges moved bytes over the fabric.
    assert!(tel.counter("hal.fabric.transfers", &Labels::none()) > 0);
    let moved = tel.counter("hal.fabric.intra_rack_bytes", &Labels::none())
        + tel.counter("hal.fabric.cross_rack_bytes", &Labels::none());
    assert!(moved > 0);

    // Pool watermarks: the SSD pool held S1's replicated records.
    let (current, high_water) = tel
        .gauge("hal.pool.ssd.used_units", &Labels::none())
        .expect("ssd watermark gauge");
    assert!(high_water > 0 && current <= high_water);
}
