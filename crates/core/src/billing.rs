//! Usage-based billing (§2 and §4 "Economics and adoption").
//!
//! "Users obtain and pay only for the resources and features they need,
//! instead of predefined packages that contain unnecessary resources."
//! And on the provider side: "they can increase the unit price of their
//! computing resources to the extent that still offers users a lower
//! total cost than today's cloud." The `price_multiplier` knob is that
//! unit-price increase; experiment E15 sweeps it to find the win-win
//! region.

use serde::{Deserialize, Serialize};
use udc_hal::Datacenter;
use udc_sched::{AppPlacement, ModulePlacement};
use udc_spec::ResourceKind;

/// The UDC pricing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BillingModel {
    /// Multiplier over the baseline unit prices (1.0 = same per-unit
    /// price as the incumbent; the paper argues UDC can charge more).
    pub price_multiplier: f64,
    /// Surcharge multiplier for single-tenant (exclusive) devices — the
    /// tenant pays for the whole device's opportunity cost.
    pub exclusive_surcharge: f64,
}

impl Default for BillingModel {
    fn default() -> Self {
        Self {
            price_multiplier: 1.0,
            exclusive_surcharge: 1.0,
        }
    }
}

/// An itemized bill for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Per-kind cost in micro-dollars: (kind, micro-dollars).
    pub by_kind: Vec<(ResourceKind, u64)>,
    /// Surcharges for exclusive devices.
    pub exclusive_surcharge: u64,
    /// Grand total in micro-dollars.
    pub total: u64,
}

impl BillingModel {
    /// Prices a placement held for `duration_us` of virtual time.
    ///
    /// Exclusive slices are billed for the *entire device* (the tenant
    /// monopolizes it), times the surcharge; shared slices for exactly
    /// the units held — the "pay only for what you use" principle.
    pub fn price(
        &self,
        dc: &Datacenter,
        placement: &AppPlacement,
        duration_us: u64,
    ) -> CostBreakdown {
        let mut by_kind: std::collections::BTreeMap<ResourceKind, u64> = Default::default();
        let mut surcharge_total = 0u64;
        for m in placement.modules.values() {
            self.price_module_into(dc, m, duration_us, &mut by_kind, &mut surcharge_total);
        }
        let total: u64 = by_kind.values().sum();
        CostBreakdown {
            by_kind: by_kind.into_iter().collect(),
            exclusive_surcharge: surcharge_total,
            total,
        }
    }

    /// Prices one module held for `duration_us`: the tenant-side
    /// building block for billing reconciliation (§4) — given observed
    /// holding time, anyone can recompute what a module should cost.
    /// Returns total micro-dollars (surcharges included).
    pub fn price_module(&self, dc: &Datacenter, m: &ModulePlacement, duration_us: u64) -> u64 {
        let mut by_kind: std::collections::BTreeMap<ResourceKind, u64> = Default::default();
        let mut surcharge = 0u64;
        self.price_module_into(dc, m, duration_us, &mut by_kind, &mut surcharge);
        by_kind.values().sum()
    }

    fn price_module_into(
        &self,
        dc: &Datacenter,
        m: &ModulePlacement,
        duration_us: u64,
        by_kind: &mut std::collections::BTreeMap<ResourceKind, u64>,
        surcharge_total: &mut u64,
    ) {
        for alloc in &m.allocations {
            for slice in &alloc.slices {
                let Some(device) = dc.device(slice.device) else {
                    continue;
                };
                let base = if slice.exclusive {
                    let whole = device.cost_of(device.capacity, duration_us);
                    let with_surcharge = (whole as f64 * self.exclusive_surcharge).round() as u64;
                    *surcharge_total += with_surcharge.saturating_sub(whole);
                    with_surcharge
                } else {
                    device.cost_of(slice.units, duration_us)
                };
                let cost = (base as f64 * self.price_multiplier).round() as u64;
                *by_kind.entry(alloc.kind).or_insert(0) += cost;
            }
        }
    }
}

impl BillingModel {
    /// Prices a run with per-module holding windows: each task module is
    /// billed for its own `(start, end)` execution window — "pay only
    /// for the resources and features they need" at *time* granularity —
    /// while modules absent from `windows` (data modules, which persist)
    /// are billed for the full `makespan_us`.
    pub fn price_windows(
        &self,
        dc: &Datacenter,
        placement: &AppPlacement,
        windows: &std::collections::BTreeMap<udc_spec::ModuleId, (u64, u64)>,
        makespan_us: u64,
    ) -> CostBreakdown {
        let mut by_kind: std::collections::BTreeMap<ResourceKind, u64> = Default::default();
        let mut surcharge_total = 0u64;
        for (id, m) in &placement.modules {
            let duration = windows
                .get(id)
                .map(|(s, e)| e.saturating_sub(*s))
                .unwrap_or(makespan_us);
            self.price_module_into(dc, m, duration, &mut by_kind, &mut surcharge_total);
        }
        let total: u64 = by_kind.values().sum();
        CostBreakdown {
            by_kind: by_kind.into_iter().collect(),
            exclusive_surcharge: surcharge_total,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_sched::{SchedOptions, Scheduler};
    use udc_spec::{AppSpec, ResourceAspect, TaskSpec};

    fn placed(exclusive: bool) -> (Datacenter, AppPlacement) {
        let mut app = AppSpec::new("b");
        let mut task = TaskSpec::new("A1")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 4));
        if exclusive {
            task = task.with_exec_env(udc_spec::ExecEnvAspect::isolation(
                udc_spec::IsolationLevel::Strongest,
            ));
        }
        app.add_task(task);
        let mut dc = Datacenter::default();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &app).unwrap();
        (dc, placement)
    }

    const HOUR_US: u64 = 3_600_000_000;

    #[test]
    fn shared_pricing_is_per_unit() {
        let (dc, placement) = placed(false);
        let bill = BillingModel::default().price(&dc, &placement, HOUR_US);
        // 4 CPU cores at $0.04/core-hour = 160_000 micro-dollars.
        assert_eq!(bill.total, 160_000);
        assert_eq!(bill.exclusive_surcharge, 0);
    }

    #[test]
    fn exclusive_bills_whole_device() {
        let (dc, placement) = placed(true);
        let bill = BillingModel::default().price(&dc, &placement, HOUR_US);
        // The exclusive CPU device has 64 cores.
        assert_eq!(bill.total, 64 * 40_000);
    }

    #[test]
    fn multiplier_scales_linearly() {
        let (dc, placement) = placed(false);
        let base = BillingModel::default().price(&dc, &placement, HOUR_US);
        let pricey = BillingModel {
            price_multiplier: 1.5,
            ..Default::default()
        }
        .price(&dc, &placement, HOUR_US);
        assert_eq!(pricey.total, (base.total as f64 * 1.5) as u64);
    }

    #[test]
    fn surcharge_applies_to_exclusive_only() {
        let (dc, placement) = placed(true);
        let bill = BillingModel {
            exclusive_surcharge: 1.25,
            ..Default::default()
        }
        .price(&dc, &placement, HOUR_US);
        assert!(bill.exclusive_surcharge > 0);
        assert_eq!(bill.total, (64.0 * 40_000.0 * 1.25) as u64);
    }

    #[test]
    fn zero_duration_zero_cost() {
        let (dc, placement) = placed(false);
        let bill = BillingModel::default().price(&dc, &placement, 0);
        assert_eq!(bill.total, 0);
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;
    use std::collections::BTreeMap;
    use udc_sched::{SchedOptions, Scheduler};
    use udc_spec::{AppSpec, ModuleId, ResourceAspect, TaskSpec};

    const HOUR_US: u64 = 3_600_000_000;

    #[test]
    fn windows_bill_tasks_for_their_own_duration() {
        let mut app = AppSpec::new("w");
        app.add_task(
            TaskSpec::new("short")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 4)),
        );
        app.add_task(
            TaskSpec::new("long")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 4)),
        );
        let mut dc = Datacenter::default();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &app).unwrap();
        let mut windows = BTreeMap::new();
        windows.insert(ModuleId::from("short"), (0u64, HOUR_US / 4));
        windows.insert(ModuleId::from("long"), (0u64, HOUR_US));
        let bill = BillingModel::default().price_windows(&dc, &placement, &windows, HOUR_US);
        // 4 cores x (0.25h + 1h) at $0.04/core-h = $0.20.
        assert_eq!(bill.total, 200_000);
    }

    #[test]
    fn modules_without_windows_pay_makespan() {
        let mut app = AppSpec::new("w");
        app.add_task(
            TaskSpec::new("T")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2)),
        );
        let mut dc = Datacenter::default();
        let mut sched = Scheduler::new(SchedOptions::default());
        let placement = sched.place_app(&mut dc, &app).unwrap();
        let empty = BTreeMap::new();
        let bill = BillingModel::default().price_windows(&dc, &placement, &empty, HOUR_US);
        let flat = BillingModel::default().price(&dc, &placement, HOUR_US);
        assert_eq!(bill.total, flat.total, "fallback equals flat pricing");
    }
}
