//! # udc-core — the User-Defined Cloud control plane
//!
//! The crate that ties the substrates into the system the paper
//! proposes: a cloud where *users* define hardware resources, execution
//! environments/security, and distributed semantics per module, and the
//! *provider* (this crate) realizes those definitions on a fine-grained,
//! disaggregated infrastructure.
//!
//! The tenant-facing flow:
//!
//! ```text
//! AppSpec (udc-spec)                        // what the user writes
//!   └── UdcCloud::submit(app)               // conflict-check, compile
//!         ├── AppIr (ir.rs)                 // IR of modules + bundles
//!         ├── Scheduler::place_app          // exact-fit placement
//!         └── Deployment                    // live environments + keys
//!               ├── UdcCloud::run           // execute the DAG
//!               │     └── RunReport         // latency, cost, security
//!               └── UdcCloud::verify_deployment  // §4 attestation
//! ```
//!
//! See [`cloud::UdcCloud`] for the entry point.

pub mod billing;
pub mod bundle;
pub mod cloud;
pub mod dryrun;
pub mod heal;
pub mod ir;
pub mod verify;

pub use billing::{BillingModel, CostBreakdown};
pub use bundle::{HighLevelObject, ResourceUnit};
pub use cloud::{CloudConfig, CloudError, Deployment, RunReport, UdcCloud};
pub use dryrun::{dry_run, TaskProfile, TrialResult};
pub use heal::{HealConfig, HealReport, HealthState, ModuleHealth, ModuleRepair, RecoveryModel};
pub use ir::{AppIr, ModuleIr};
pub use verify::{
    check_quote, policy_for_module, BillingCheck, BillingReconciliation, ModuleVerification,
    VerificationReport,
};
