//! The verification service (§4).
//!
//! "UDC must enable users to verify that the cloud vendor is correctly
//! providing their selected features. ... However, many features that
//! UDC allows users to define cannot be verified with today's remote
//! attestation primitives (e.g., whether or not resources were provided
//! as specified)."
//!
//! This module extends quote claims with exactly those features: the
//! realized isolation level, tenancy, and per-kind resource amounts. A
//! tenant verifies each user-verifiable module against a policy derived
//! from its own aspects — trusting only the device keys, never the
//! provider's software.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use udc_crypto::attest::{AttestError, AttestationPolicy, Quote, Verifier};
use udc_crypto::MeasurementRegister;
use udc_spec::ModuleId;

/// Verification status of one module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModuleVerification {
    /// The module's environment produced a quote that satisfied the
    /// tenant's policy.
    Verified,
    /// A quote was produced but verification failed — the provider did
    /// not fulfill the definition (or forged the quote).
    Failed(String),
    /// The chosen environment class cannot be verified (medium/weak
    /// isolation — "require trust in the provider", §3.3).
    NotVerifiable,
}

/// One module's billing cross-check: the amount the provider charged
/// (from the `core.billed_microdollars` telemetry counter) against what
/// the tenant recomputes from telemetry-observed holding time at the
/// prices agreed at submit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BillingCheck {
    /// Micro-dollars the provider recorded as billed.
    pub billed: u64,
    /// Micro-dollars expected from observed usage at agreed prices.
    pub expected: u64,
    /// Whether `billed` is within the reconciliation tolerance of
    /// `expected`.
    pub within_tolerance: bool,
}

/// Telemetry-vs-billing reconciliation across a deployment (§4: "how
/// can users trust the cloud?" — by recomputing the bill from what
/// observably happened).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BillingReconciliation {
    /// Per-module checks (only modules with recorded usage appear).
    pub modules: BTreeMap<ModuleId, BillingCheck>,
    /// Relative tolerance applied (rounding happens per device slice).
    pub tolerance: f64,
}

impl BillingReconciliation {
    /// True when every checked module's bill matched expectations.
    pub fn consistent(&self) -> bool {
        self.modules.values().all(|c| c.within_tolerance)
    }

    /// Modules whose bill fell outside tolerance.
    pub fn flagged(&self) -> Vec<&ModuleId> {
        self.modules
            .iter()
            .filter(|(_, c)| !c.within_tolerance)
            .map(|(id, _)| id)
            .collect()
    }
}

/// The per-deployment verification report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Per-module outcome.
    pub modules: BTreeMap<ModuleId, ModuleVerification>,
    /// Billing reconciliation, present when the cloud runs with
    /// telemetry enabled and the deployment has recorded usage.
    pub billing: Option<BillingReconciliation>,
}

impl VerificationReport {
    /// Count of verified modules.
    pub fn verified(&self) -> usize {
        self.modules
            .values()
            .filter(|v| **v == ModuleVerification::Verified)
            .count()
    }

    /// Count of failed modules.
    pub fn failed(&self) -> usize {
        self.modules
            .values()
            .filter(|v| matches!(v, ModuleVerification::Failed(_)))
            .count()
    }

    /// Count of modules the tenant simply has to trust.
    pub fn not_verifiable(&self) -> usize {
        self.modules
            .values()
            .filter(|v| **v == ModuleVerification::NotVerifiable)
            .count()
    }

    /// True when nothing failed (unverifiable modules are allowed; the
    /// user chose those isolation levels) and, when a billing
    /// reconciliation ran, every module's bill matched observed usage.
    pub fn all_fulfilled(&self) -> bool {
        self.failed() == 0
            && self
                .billing
                .as_ref()
                .map(|b| b.consistent())
                .unwrap_or(true)
    }
}

/// Builds the attestation policy a tenant derives from a module's
/// aspects and expected software stack.
pub fn policy_for_module(
    expected_events: &[String],
    isolation: &str,
    single_tenant: bool,
    resources: &[(String, u64)],
) -> AttestationPolicy {
    let expected = MeasurementRegister::replay(expected_events);
    let mut policy = AttestationPolicy::measurement(expected)
        .require("isolation", isolation)
        .require(
            "tenancy",
            if single_tenant {
                "single_tenant"
            } else {
                "shared"
            },
        );
    for (kind, units) in resources {
        policy = policy.require(format!("resources.{kind}"), units.to_string());
    }
    policy
}

/// Verifies one quote against a policy, mapping the result into a
/// [`ModuleVerification`].
pub fn check_quote(
    verifier: &Verifier,
    quote: &Quote,
    nonce: &[u8; 32],
    policy: &AttestationPolicy,
) -> ModuleVerification {
    match verifier.verify(quote, nonce, policy) {
        Ok(()) => ModuleVerification::Verified,
        Err(e @ AttestError::ClaimMismatch { .. }) => {
            ModuleVerification::Failed(format!("definition not fulfilled: {e}"))
        }
        Err(e) => ModuleVerification::Failed(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_crypto::attest::RootOfTrust;

    #[test]
    fn honest_provider_verifies() {
        let key = [1u8; 32];
        let mut rot = RootOfTrust::new("env0", key);
        rot.measure("boot: udc-runtime v1");
        rot.measure("load: A1");
        let mut verifier = Verifier::new();
        verifier.trust_device("env0", key);
        let nonce = [9u8; 32];
        let mut claims = BTreeMap::new();
        claims.insert("isolation".to_string(), "strongest".to_string());
        claims.insert("tenancy".to_string(), "single_tenant".to_string());
        claims.insert("resources.cpu".to_string(), "4".to_string());
        let quote = rot.quote(nonce, claims);
        let policy = policy_for_module(
            &["boot: udc-runtime v1".to_string(), "load: A1".to_string()],
            "strongest",
            true,
            &[("cpu".to_string(), 4)],
        );
        assert_eq!(
            check_quote(&verifier, &quote, &nonce, &policy),
            ModuleVerification::Verified
        );
    }

    #[test]
    fn underprovisioned_resources_detected() {
        // The paper's headline extension: the provider gave 2 cores but
        // the user defined 4 — classic attestation cannot see this; UDC
        // claims can.
        let key = [1u8; 32];
        let mut rot = RootOfTrust::new("env0", key);
        rot.measure("boot");
        let mut verifier = Verifier::new();
        verifier.trust_device("env0", key);
        let nonce = [2u8; 32];
        let mut claims = BTreeMap::new();
        claims.insert("isolation".to_string(), "strong".to_string());
        claims.insert("tenancy".to_string(), "shared".to_string());
        claims.insert("resources.cpu".to_string(), "2".to_string());
        let quote = rot.quote(nonce, claims);
        let policy = policy_for_module(
            &["boot".to_string()],
            "strong",
            false,
            &[("cpu".to_string(), 4)],
        );
        match check_quote(&verifier, &quote, &nonce, &policy) {
            ModuleVerification::Failed(msg) => {
                assert!(msg.contains("definition not fulfilled"), "{msg}")
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn report_counters() {
        let mut report = VerificationReport::default();
        report
            .modules
            .insert("A1".into(), ModuleVerification::Verified);
        report
            .modules
            .insert("A2".into(), ModuleVerification::NotVerifiable);
        report
            .modules
            .insert("A3".into(), ModuleVerification::Failed("x".into()));
        assert_eq!(report.verified(), 1);
        assert_eq!(report.not_verifiable(), 1);
        assert_eq!(report.failed(), 1);
        assert!(!report.all_fulfilled());
    }
}
