//! Dry-run profiling (§3.2).
//!
//! "How can users know their applications' resource usage? ... We
//! believe a viable solution is a combination of developer knowledge,
//! program analysis, and 'dry-run' profiling ... The IT team or the
//! cloud provider will then use tools that UDC provides (e.g.,
//! profilers, cross-platform compilers, etc.) to perform dry runs that
//! execute the program with developer-supplied test inputs on different
//! types of hardware within the developer-defined set. The actual
//! resource usage observed for each task is then used as the resource
//! aspect of the task."
//!
//! [`dry_run`] takes an application whose tasks carry only *candidate
//! sets* and *goals* (developer knowledge) plus a test-input scale, runs
//! every task on every candidate hardware kind in the simulator, and
//! writes the observed best choice back into each task's resource
//! aspect — producing the concrete demands the scheduler then places.

use serde::{Deserialize, Serialize};
use udc_hal::PerfProfile;
use udc_spec::{AppSpec, Goal, ModuleKind, ResourceKind};

/// One task's measurements on one candidate kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Candidate hardware kind.
    pub kind: ResourceKind,
    /// Units the trial allocated (the profiling default).
    pub units: u64,
    /// Observed execution time in microseconds.
    pub exec_us: u64,
    /// Cost of the execution at unit prices, in micro-dollars.
    pub cost_micro_dollars: u64,
}

/// The dry-run report for one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskProfile {
    /// The task.
    pub module: String,
    /// All candidate trials, fastest first.
    pub trials: Vec<TrialResult>,
    /// The trial chosen per the task's goal.
    pub chosen: TrialResult,
}

/// Profiles `app` with `input_scale` (a multiplier on each task's
/// declared work, representing the developer-supplied test input) and
/// returns a copy of the app whose tasks carry concrete demands, plus
/// the per-task report.
///
/// Tasks that already have explicit compute demands are left untouched
/// (the user knew what they wanted); tasks without candidates default to
/// the full compute set, as §3.2's "specify a set of possible hardware
/// (e.g., CPU, GPU) or the type of hardware (e.g., compute)" fallback.
pub fn dry_run(app: &AppSpec, input_scale: f64) -> (AppSpec, Vec<TaskProfile>) {
    let mut out = app.clone();
    let mut reports = Vec::new();
    let ids: Vec<udc_spec::ModuleId> = out.modules.keys().cloned().collect();
    for id in ids {
        let module = out.modules.get(&id).expect("iterating own keys");
        if module.kind != ModuleKind::Task {
            continue;
        }
        if module.resource.demand.iter().any(|(k, _)| k.is_compute()) {
            continue; // Explicit demand: nothing to profile.
        }
        let work = ((module.work_units.unwrap_or(100) as f64) * input_scale).ceil() as u64;
        let candidates: Vec<ResourceKind> = if module.resource.candidates.is_empty() {
            vec![
                ResourceKind::Cpu,
                ResourceKind::Gpu,
                ResourceKind::Fpga,
                ResourceKind::Soc,
            ]
        } else {
            module.resource.candidates.clone()
        };

        let mut trials: Vec<TrialResult> = candidates
            .iter()
            .map(|&kind| {
                let profile = PerfProfile::default_for(kind);
                // The profiling allocation: one device unit (the dry run
                // measures per-unit behaviour; the demand scales later).
                let units = 1u64;
                let exec_s = work as f64 / (profile.work_units_per_sec * units as f64);
                let exec_us = (exec_s * 1e6).ceil() as u64;
                let cost = (profile.micro_dollars_per_unit_hour as f64 * units as f64 * exec_s
                    / 3600.0)
                    .round() as u64;
                TrialResult {
                    kind,
                    units,
                    exec_us,
                    cost_micro_dollars: cost,
                }
            })
            .collect();
        trials.sort_by_key(|t| t.exec_us);

        let chosen = match module.resource.goal {
            Some(Goal::Fastest) | None => trials[0].clone(),
            Some(Goal::Cheapest) => trials
                .iter()
                .min_by_key(|t| t.cost_micro_dollars)
                .expect("candidates non-empty")
                .clone(),
        };

        let module = out.modules.get_mut(&id).expect("present");
        module.resource.demand.set(chosen.kind, chosen.units);
        // The observed work becomes the calibrated estimate.
        module.work_units = Some(work.max(1));
        reports.push(TaskProfile {
            module: id.to_string(),
            trials,
            chosen,
        });
    }
    (out, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_spec::{ResourceAspect, TaskSpec};

    fn goal_app(goal: Goal, candidates: &[ResourceKind]) -> AppSpec {
        let mut app = AppSpec::new("p");
        let mut r = ResourceAspect::goal(goal);
        for &c in candidates {
            r = r.with_candidate(c);
        }
        app.add_task(TaskSpec::new("T").with_resource(r).with_work(10_000));
        app
    }

    #[test]
    fn fastest_goal_picks_fastest_candidate() {
        let app = goal_app(Goal::Fastest, &[ResourceKind::Cpu, ResourceKind::Gpu]);
        let (profiled, reports) = dry_run(&app, 1.0);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].chosen.kind, ResourceKind::Gpu, "GPU is fastest");
        let t = profiled.module(&"T".into()).unwrap();
        assert_eq!(t.resource.demand.get(ResourceKind::Gpu), 1);
    }

    #[test]
    fn cheapest_goal_picks_cheapest_per_run() {
        let app = goal_app(Goal::Cheapest, &[ResourceKind::Cpu, ResourceKind::Gpu]);
        let (_, reports) = dry_run(&app, 1.0);
        let chosen = &reports[0].chosen;
        for t in &reports[0].trials {
            assert!(chosen.cost_micro_dollars <= t.cost_micro_dollars);
        }
    }

    #[test]
    fn explicit_demand_untouched() {
        let mut app = AppSpec::new("p");
        app.add_task(
            TaskSpec::new("T")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 4))
                .with_work(100),
        );
        let (profiled, reports) = dry_run(&app, 2.0);
        assert!(reports.is_empty(), "nothing to profile");
        assert_eq!(profiled, app);
    }

    #[test]
    fn input_scale_calibrates_work() {
        let app = goal_app(Goal::Fastest, &[ResourceKind::Cpu]);
        let (profiled, _) = dry_run(&app, 3.5);
        let t = profiled.module(&"T".into()).unwrap();
        assert_eq!(t.work_units, Some(35_000), "scaled by the test input");
    }

    #[test]
    fn no_candidates_defaults_to_full_compute_set() {
        let mut app = AppSpec::new("p");
        app.add_task(
            TaskSpec::new("T")
                .with_resource(ResourceAspect::goal(Goal::Fastest))
                .with_work(100),
        );
        let (_, reports) = dry_run(&app, 1.0);
        assert_eq!(reports[0].trials.len(), 4, "all compute kinds trialled");
    }

    #[test]
    fn profiled_app_places_end_to_end() {
        // The §3.2 flow: goal-only spec -> dry run -> concrete demands ->
        // placement succeeds with the chosen kinds.
        let app = goal_app(Goal::Fastest, &[ResourceKind::Cpu, ResourceKind::Gpu]);
        let (profiled, _) = dry_run(&app, 1.0);
        let mut cloud = crate::cloud::UdcCloud::new(crate::cloud::CloudConfig::default());
        let mut dep = cloud.submit(&profiled).expect("profiled app places");
        let placement = &dep.placement.modules[&"T".into()];
        assert_eq!(placement.placed_kind, ResourceKind::Gpu);
        cloud.teardown(&mut dep);
    }

    #[test]
    fn trials_sorted_fastest_first() {
        let app = goal_app(
            Goal::Fastest,
            &[ResourceKind::Cpu, ResourceKind::Gpu, ResourceKind::Soc],
        );
        let (_, reports) = dry_run(&app, 1.0);
        for w in reports[0].trials.windows(2) {
            assert!(w[0].exec_us <= w[1].exec_us);
        }
    }
}
