//! Vertical bundling (Design Principle 3).
//!
//! "We propose to vertically bundle layers of fine-grained pieces into a
//! self-sustained resource unit. For example, we can combine some amount
//! of compute resources (e.g., a CPU core), an execution environment
//! (e.g., a container), and some distributed API library into one
//! low-level resource unit for allocation, scheduling, and failure
//! handling. We also propose to bundle a fine-grained code/data module
//! and its aspects into a high-level object, which can be executed on
//! one or more resource units."

use serde::{Deserialize, Serialize};
use udc_hal::DeviceId;
use udc_isolate::EnvironmentPlan;
use udc_spec::{DistributedAspect, ModuleId, ResourceKind};

/// The low-level bundle: resources + environment + distributed endpoint,
/// managed as one unit for allocation, scheduling and failure handling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUnit {
    /// Stable unit id.
    pub id: u64,
    /// Hosting device.
    pub device: DeviceId,
    /// Resource kind and amount bundled in.
    pub kind: ResourceKind,
    /// Units of the resource.
    pub units: u64,
    /// The execution environment bundled in.
    pub env: EnvironmentPlan,
    /// The distributed-API endpoint tag (actor address).
    pub endpoint: String,
}

/// The high-level bundle: one module plus its aspects, executable on one
/// or more resource units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HighLevelObject {
    /// The module.
    pub module: ModuleId,
    /// The module's distributed aspect (carried with the object so
    /// failure handling travels with it).
    pub dist: DistributedAspect,
    /// The resource units executing this object (one per replica for
    /// data modules).
    pub units: Vec<ResourceUnit>,
}

impl HighLevelObject {
    /// The unit count (replicas for data, 1 for tasks).
    pub fn fan_out(&self) -> usize {
        self.units.len()
    }

    /// Devices this object touches.
    pub fn devices(&self) -> Vec<DeviceId> {
        self.units.iter().map(|u| u.device).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_isolate::EnvKind;

    fn unit(id: u64, device: u32) -> ResourceUnit {
        ResourceUnit {
            id,
            device: DeviceId(device),
            kind: ResourceKind::Cpu,
            units: 2,
            env: EnvironmentPlan {
                kind: EnvKind::Container,
                single_tenant: false,
                user_verifiable: false,
            },
            endpoint: format!("unit-{id}"),
        }
    }

    #[test]
    fn object_tracks_units_and_devices() {
        let obj = HighLevelObject {
            module: "S1".into(),
            dist: DistributedAspect::default().replication(3),
            units: vec![unit(0, 10), unit(1, 11), unit(2, 12)],
        };
        assert_eq!(obj.fan_out(), 3);
        assert_eq!(
            obj.devices(),
            vec![DeviceId(10), DeviceId(11), DeviceId(12)]
        );
    }

    #[test]
    fn serde_round_trip() {
        let obj = HighLevelObject {
            module: "A1".into(),
            dist: DistributedAspect::default(),
            units: vec![unit(7, 3)],
        };
        let js = serde_json::to_string(&obj).unwrap();
        let back: HighLevelObject = serde_json::from_str(&js).unwrap();
        assert_eq!(back, obj);
    }
}
