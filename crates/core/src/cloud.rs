//! The UDC control plane: submit → place → run → verify → teardown.

use crate::billing::{BillingModel, CostBreakdown};
use crate::bundle::{HighLevelObject, ResourceUnit};
use crate::ir::AppIr;
use crate::verify::{
    check_quote, policy_for_module, BillingCheck, BillingReconciliation, ModuleVerification,
    VerificationReport,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use udc_crypto::aead::{seal, Key, Nonce};
use udc_crypto::attest::Verifier;
use udc_crypto::derive_key;
use udc_economics::{demand_of_app, SharedQuotaGate};
use udc_hal::{Datacenter, DatacenterConfig, DeviceId};
use udc_isolate::{EnvState, Environment, InstanceId, WarmPoolConfig};
use udc_sched::{data_movement, AppPlacement, SchedError, SchedOptions, Scheduler, StartMode};
use udc_spec::{AppSpec, ConflictPolicy, EdgeKind, ModuleId, ModuleKind, SpecError};
use udc_telemetry::{EventKind, FieldValue, Labels, Telemetry};

/// Cloud-wide configuration.
pub struct CloudConfig {
    /// Datacenter shape.
    pub datacenter: DatacenterConfig,
    /// Tenant tag.
    pub tenant: String,
    /// Warm-pool sizing.
    pub warm_pool: WarmPoolConfig,
    /// Conflict handling (§3.4).
    pub conflict_policy: ConflictPolicy,
    /// Billing model.
    pub billing: BillingModel,
    /// Honour locality hints.
    pub use_locality_hints: bool,
    /// Master secret all per-module data keys derive from (the tenant's
    /// root key, provisioned out of band).
    pub tenant_secret: Vec<u8>,
}

impl Default for CloudConfig {
    fn default() -> Self {
        Self {
            datacenter: DatacenterConfig::default(),
            tenant: "tenant".to_string(),
            warm_pool: WarmPoolConfig::disabled(),
            conflict_policy: ConflictPolicy::StrictestWins,
            billing: BillingModel::default(),
            use_locality_hints: true,
            tenant_secret: b"udc-tenant-secret".to_vec(),
        }
    }
}

/// Control-plane errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// Spec rejected.
    Spec(SpecError),
    /// Placement failed.
    Sched(SchedError),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Spec(e) => write!(f, "spec: {e}"),
            CloudError::Sched(e) => write!(f, "sched: {e}"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<SpecError> for CloudError {
    fn from(e: SpecError) -> Self {
        CloudError::Spec(e)
    }
}

impl From<SchedError> for CloudError {
    fn from(e: SchedError) -> Self {
        CloudError::Sched(e)
    }
}

/// A live deployment: IR + placement + started environments + keys.
pub struct Deployment {
    /// Compiled IR.
    pub ir: AppIr,
    /// The placement.
    pub placement: AppPlacement,
    /// Started execution environments, one per module.
    pub environments: BTreeMap<ModuleId, Environment>,
    /// The vertical bundles (Design Principle 3).
    pub objects: Vec<HighLevelObject>,
    /// Per-data-module sealing keys (derived from the tenant secret).
    pub data_keys: BTreeMap<ModuleId, Key>,
    /// The billing model advertised when the deployment was accepted —
    /// the contract billing reconciliation checks charges against, even
    /// if the provider later changes its prices.
    pub billing: BillingModel,
    /// Per-module repair state (driven by [`UdcCloud::advance`]).
    pub health: crate::heal::HealthState,
    /// Recoverable state: message log + checkpoints the repair loop
    /// replays/restores after a crash.
    pub recovery: crate::heal::RecoveryModel,
    /// The admission footprint committed against the tenant's quota at
    /// submit (released at teardown when economics is attached).
    pub admitted_demand: udc_spec::ResourceVector,
    /// Modules evicted because the tenant's account is suspended; they
    /// stay out of the device-repair re-heal path until payment
    /// reinstates the account.
    pub econ_suspended: std::collections::BTreeSet<ModuleId>,
    /// Released flag (idempotent teardown).
    released: bool,
}

/// The result of running a deployment end to end.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-module (start_us, finish_us) on the virtual clock.
    pub timings: BTreeMap<ModuleId, (u64, u64)>,
    /// End-to-end makespan (critical path) in microseconds.
    pub makespan_us: u64,
    /// Itemized cost of holding the resources for the makespan.
    pub cost: CostBreakdown,
    /// Messages sealed (confidentiality/integrity applied on data
    /// leaving environments, §3.3).
    pub sealed_messages: u64,
    /// Bytes of payload protected.
    pub sealed_bytes: u64,
    /// Total fabric transfer time across access edges.
    pub transfer_us: u64,
    /// Fraction of modules started from the warm pool.
    pub warm_fraction: f64,
}

/// The User-Defined Cloud.
pub struct UdcCloud {
    pub(crate) dc: Datacenter,
    pub(crate) scheduler: Scheduler,
    billing: BillingModel,
    pub(crate) tenant: String,
    tenant_secret: Vec<u8>,
    conflict_policy: ConflictPolicy,
    /// Per-device attestation keys, fused at build time.
    pub(crate) device_keys: BTreeMap<DeviceId, [u8; 32]>,
    pub(crate) next_instance: u64,
    pub(crate) next_unit: u64,
    pub(crate) obs: Telemetry,
    /// Devices currently crashed (maintained by [`UdcCloud::advance`]).
    pub(crate) dead_devices: std::collections::BTreeSet<DeviceId>,
    /// Tenant economics gate shared with the scheduler (admission) and
    /// the caller (payments, market). `None` = ungated seed behavior.
    pub(crate) econ_gate: Option<SharedQuotaGate>,
}

impl UdcCloud {
    /// Builds the cloud: datacenter, scheduler, and fused device keys.
    pub fn new(config: CloudConfig) -> Self {
        let dc = Datacenter::new(config.datacenter);
        let device_keys: BTreeMap<DeviceId, [u8; 32]> = dc
            .device_ids()
            .into_iter()
            .map(|id| {
                let key = derive_key(
                    b"udc-hardware-root",
                    b"device-key",
                    format!("{id}").as_bytes(),
                );
                (id, key)
            })
            .collect();
        let tenant = config.tenant.clone();
        let scheduler = Scheduler::new(SchedOptions {
            tenant: config.tenant,
            use_locality_hints: config.use_locality_hints,
            warm_pool: config.warm_pool,
            conflict_policy: config.conflict_policy,
            ..Default::default()
        });
        Self {
            dc,
            scheduler,
            billing: config.billing,
            tenant,
            tenant_secret: config.tenant_secret,
            conflict_policy: config.conflict_policy,
            device_keys,
            next_instance: 0,
            next_unit: 0,
            obs: Telemetry::disabled(),
            dead_devices: std::collections::BTreeSet::new(),
            econ_gate: None,
        }
    }

    /// Attaches the tenant economics subsystem: the scheduler starts
    /// consulting `gate` at admission, `run` meters usage into the
    /// tenant's ledger at the submit-time prices, billing
    /// reconciliation checks against the ledger, and
    /// [`UdcCloud::advance`] drives the overdue → degrade → suspend →
    /// reinstate lifecycle. The caller keeps a clone of the handle for
    /// payments and the spot market.
    pub fn attach_economics(&mut self, gate: SharedQuotaGate) {
        self.scheduler.set_quota_gate(Some(gate.clone()));
        self.econ_gate = Some(gate);
    }

    /// The attached economics gate, if any.
    pub fn economics(&self) -> Option<&SharedQuotaGate> {
        self.econ_gate.as_ref()
    }

    /// Installs an observability hub across the whole control plane:
    /// the datacenter (which points the hub's clock at the simulated
    /// clock and wires the fabric), the scheduler and its warm pool, and
    /// the control plane itself.
    pub fn set_observer(&mut self, obs: Telemetry) {
        self.dc.set_observer(obs.clone());
        self.scheduler.set_observer(obs.clone());
        self.obs = obs;
    }

    /// Convenience: creates an enabled hub, installs it everywhere, and
    /// returns a handle for reading metrics and exporting snapshots.
    pub fn enable_telemetry(&mut self) -> Telemetry {
        let obs = Telemetry::enabled();
        self.set_observer(obs.clone());
        obs
    }

    /// The installed observability hub (disabled no-op by default).
    pub fn observer(&self) -> &Telemetry {
        &self.obs
    }

    /// Writes the current telemetry snapshot as JSON to `path`
    /// (typically under `results/`), creating parent directories.
    pub fn export_telemetry(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<std::path::PathBuf> {
        self.obs.snapshot().write_to(path)
    }

    /// The underlying datacenter (inspection and experiments).
    pub fn datacenter(&self) -> &Datacenter {
        &self.dc
    }

    /// Mutable datacenter access (failure injection).
    pub fn datacenter_mut(&mut self) -> &mut Datacenter {
        &mut self.dc
    }

    /// The scheduler (warm-pool stats, etc.).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// Submits an application: compile to IR, place, start environments,
    /// derive data keys, build bundles.
    pub fn submit(&mut self, app: &AppSpec) -> Result<Deployment, CloudError> {
        // Every submit mints one causal trace; the context threads
        // explicitly through validation, placement, allocation, and
        // launch so the whole deployment reconstructs as a single span
        // DAG (core → sched → hal → isolate).
        let span = self.obs.trace_root("cloud.submit");
        let ctx = span.ctx();
        let ir = {
            let _validate = self.obs.span_opt(ctx.as_ref(), "spec.validate");
            AppIr::compile(app, self.conflict_policy)?
        };
        let placement = self
            .scheduler
            .place_app_traced(&mut self.dc, &ir.app, ctx)?;
        self.obs
            .incr("core.submits", Labels::tenant(self.tenant.as_str()), 1);
        self.obs.event(
            EventKind::Submit,
            Labels::tenant(self.tenant.as_str()),
            &[
                ("app", FieldValue::from(ir.app.name.as_str())),
                ("modules", FieldValue::from(placement.modules.len())),
                ("warm_fraction", FieldValue::from(placement.warm_fraction())),
            ],
        );

        let mut environments = BTreeMap::new();
        let mut objects = Vec::new();
        let mut data_keys = BTreeMap::new();
        for m in ir.modules.iter() {
            let id = &m.spec.id;
            let p = placement
                .modules
                .get(id)
                .expect("placement covers every module");
            let device_key = self
                .device_keys
                .get(&p.primary_device)
                .copied()
                .unwrap_or([0u8; 32]);
            let mut env = Environment::new(InstanceId(self.next_instance), p.env, device_key);
            self.next_instance += 1;
            let identity = format!("{}@{}", id, m.identity_hex());
            {
                let _launch = self.obs.span_opt(ctx.as_ref(), "isolate.launch");
                env.start(p.start_mode == StartMode::Warm, &identity);
            }
            environments.insert(id.clone(), env);

            if m.spec.kind == ModuleKind::Data {
                data_keys.insert(
                    id.clone(),
                    Key::derive(&self.tenant_secret, id.as_str().as_bytes()),
                );
            }

            let units = p
                .replica_devices
                .iter()
                .map(|&device| {
                    let unit = ResourceUnit {
                        id: self.next_unit,
                        device,
                        kind: p.placed_kind,
                        units: p.allocations.first().map(|a| a.total_units()).unwrap_or(0),
                        env: p.env,
                        endpoint: format!("{}#{}", id, self.next_unit),
                    };
                    self.next_unit += 1;
                    unit
                })
                .collect();
            objects.push(HighLevelObject {
                module: id.clone(),
                dist: m.spec.dist.clone(),
                units,
            });
        }
        Ok(Deployment {
            placement,
            environments,
            objects,
            data_keys,
            billing: self.billing,
            health: crate::heal::HealthState::default(),
            recovery: crate::heal::RecoveryModel::new(),
            // Same estimate the scheduler committed at admission (it
            // gates on the pre-resolution spec, as we compute here).
            admitted_demand: demand_of_app(app),
            econ_suspended: std::collections::BTreeSet::new(),
            released: false,
            ir,
        })
    }

    /// Runs a deployment end to end on the virtual clock.
    ///
    /// Task timing: `finish = max(pred finishes, 0) + startup + access
    /// transfers (+ sealing) + execution`. Data modules are ready after
    /// their own startup. The makespan is the DAG's critical path; all
    /// resources are billed for the makespan (they are held for the
    /// run).
    pub fn run(&mut self, dep: &Deployment) -> RunReport {
        let _span = self.obs.span("cloud.run");
        let app = &dep.ir.app;
        let mut report = RunReport::default();
        let order = app.topo_order().expect("validated at submit");
        let mut finish: BTreeMap<ModuleId, u64> = BTreeMap::new();

        for id in &order {
            let module = app.module(id).expect("ordered ids exist");
            let p = &dep.placement.modules[id];
            match module.kind {
                ModuleKind::Data => {
                    let start = 0u64;
                    let end = start + p.startup_us;
                    finish.insert(id.clone(), end);
                    report.timings.insert(id.clone(), (start, end));
                }
                ModuleKind::Task => {
                    let ready = app
                        .edges_to(id)
                        .filter(|e| e.kind == EdgeKind::Dependency)
                        .filter_map(|e| finish.get(&e.from).copied())
                        .max()
                        .unwrap_or(0);
                    let start = ready;
                    let mut elapsed = p.startup_us;

                    // Access edges: move the data over the fabric and
                    // apply the user's data protection.
                    for e in app.edges.iter().filter(|e| e.kind == EdgeKind::Access) {
                        let data_id = if &e.from == id
                            && app.module(&e.to).map(|m| m.kind) == Some(ModuleKind::Data)
                        {
                            &e.to
                        } else if &e.to == id
                            && app.module(&e.from).map(|m| m.kind) == Some(ModuleKind::Data)
                        {
                            &e.from
                        } else {
                            continue;
                        };
                        let data_module = app.module(data_id).expect("edge checked");
                        let dp = &dep.placement.modules[data_id];
                        let bytes = data_module.bytes.unwrap_or(1 << 20);
                        elapsed += self.dc.fabric().transfer_us(
                            p.primary_device,
                            dp.primary_device,
                            bytes,
                        );
                        report.transfer_us +=
                            self.dc
                                .fabric()
                                .transfer_us(p.primary_device, dp.primary_device, 0);

                        // Apply data protection when the data leaves its
                        // environment (§3.3): seal a representative
                        // payload, charging crypto time per byte.
                        let prot = data_module
                            .exec_env
                            .protection
                            .unwrap_or(udc_spec::DataProtection::NONE);
                        if prot.confidentiality || prot.integrity {
                            if let Some(key) = dep.data_keys.get(data_id) {
                                let sample = vec![0x5au8; (bytes.min(4096)) as usize];
                                let boxed = seal(
                                    key,
                                    Nonce::from_sequence(report.sealed_messages + 1),
                                    id.as_str().as_bytes(),
                                    &sample,
                                );
                                debug_assert!(!boxed.ciphertext.is_empty());
                                report.sealed_messages += 1;
                                report.sealed_bytes += bytes;
                                // ~1 us per 4 KiB sealed (ChaCha20 +
                                // HMAC at ~4 GB/s equivalent).
                                elapsed += bytes.div_ceil(4096);
                            }
                        }
                    }

                    elapsed += p.est_exec_us.unwrap_or(1_000);
                    let end = start + elapsed;
                    finish.insert(id.clone(), end);
                    report.timings.insert(id.clone(), (start, end));
                }
            }
        }

        report.makespan_us = finish.values().copied().max().unwrap_or(0);
        report.warm_fraction = dep.placement.warm_fraction();
        // Task modules pay for their own execution window; data modules
        // persist for the whole run ("pay only for what is used", at
        // time granularity too).
        let task_windows: BTreeMap<ModuleId, (u64, u64)> = report
            .timings
            .iter()
            .filter(|(id, _)| app.module(id).map(|m| m.kind) == Some(ModuleKind::Task))
            .map(|(id, w)| (id.clone(), *w))
            .collect();
        report.cost =
            self.billing
                .price_windows(&self.dc, &dep.placement, &task_windows, report.makespan_us);
        // Tenant-side metering: debit the ledger at the prices *agreed
        // at submit* (`dep.billing`), never the provider's current
        // model. The provider-side counters below use `self.billing`,
        // which is exactly what lets ledger-based reconciliation catch
        // a provider that silently raises prices mid-flight.
        if let Some(gate) = &self.econ_gate {
            let now = self.dc.clock().now();
            let mut g = gate.lock().expect("quota gate poisoned");
            if let Some(acct) = g.account_mut(&self.tenant) {
                for (id, m) in &dep.placement.modules {
                    let duration = task_windows
                        .get(id)
                        .map(|(s, e)| e.saturating_sub(*s))
                        .unwrap_or(report.makespan_us);
                    let owed = dep.billing.price_module(&self.dc, m, duration);
                    acct.charge(now, owed, Some(id.as_str()), "usage window");
                }
            }
        }
        if self.obs.is_enabled() {
            self.obs
                .incr("core.runs", Labels::tenant(self.tenant.as_str()), 1);
            for (id, m) in &dep.placement.modules {
                // Same holding windows billing uses: tasks pay for their
                // execution window, data modules for the whole run.
                let duration = task_windows
                    .get(id)
                    .map(|(s, e)| e.saturating_sub(*s))
                    .unwrap_or(report.makespan_us);
                let labels = Labels::module(self.tenant.as_str(), id.as_str());
                let units: u64 = m.allocations.iter().map(|a| a.total_units()).sum();
                self.obs
                    .incr("core.module_window_us", labels.clone(), duration);
                self.obs.incr(
                    "core.module_unit_us",
                    labels.clone(),
                    units.saturating_mul(duration),
                );
                let billed = self.billing.price_module(&self.dc, m, duration);
                self.obs.incr("core.billed_microdollars", labels, billed);
            }
        }
        self.dc.clock().advance(report.makespan_us);
        self.dc.telemetry_mut().incr("runs", 1);
        report
    }

    /// Verifies a deployment the way a tenant would (§4): challenge each
    /// user-verifiable environment with a fresh nonce and check its
    /// quote against a policy derived from the module's own aspects.
    pub fn verify_deployment(&self, dep: &Deployment) -> VerificationReport {
        let _span = self.obs.span("cloud.verify");
        // The tenant's verifier trusts the hardware keys (manufacturer
        // chain), not the provider.
        let mut verifier = Verifier::new();
        for (id, env) in dep.environments.iter() {
            if let Some(rot) = env.root_of_trust() {
                let device = dep.placement.modules[id].primary_device;
                let key = self.device_keys.get(&device).copied().unwrap_or([0u8; 32]);
                verifier.trust_device(rot.device_id(), key);
            }
        }

        let mut report = VerificationReport::default();
        for m in &dep.ir.modules {
            let id = &m.spec.id;
            let p = &dep.placement.modules[id];
            let env = &dep.environments[id];
            if !p.env.user_verifiable {
                report
                    .modules
                    .insert(id.clone(), ModuleVerification::NotVerifiable);
                continue;
            }
            let Some(rot) = env.root_of_trust() else {
                // Verifiable plan without a TEE: physically-isolated
                // single-tenant devices attest via the device's own root
                // of trust; we model that as verified-by-exclusivity
                // when the allocation is exclusive.
                let exclusive = p
                    .allocations
                    .iter()
                    .any(|a| a.slices.iter().any(|s| s.exclusive));
                report.modules.insert(
                    id.clone(),
                    if exclusive {
                        ModuleVerification::Verified
                    } else {
                        ModuleVerification::Failed(
                            "single-tenant promised but device is shared".to_string(),
                        )
                    },
                );
                continue;
            };
            // Challenge-response with a fresh nonce derived from the
            // clock (deterministic in simulation, unique per challenge).
            let nonce = derive_key(
                b"udc-nonce",
                &self.dc.clock().now().to_be_bytes(),
                id.as_str().as_bytes(),
            );
            let mut claims = BTreeMap::new();
            let isolation = m
                .spec
                .exec_env
                .isolation
                .unwrap_or_default()
                .name()
                .to_string();
            claims.insert("isolation".to_string(), isolation.clone());
            claims.insert(
                "tenancy".to_string(),
                if p.env.single_tenant {
                    "single_tenant"
                } else {
                    "shared"
                }
                .to_string(),
            );
            let mut resources = Vec::new();
            for a in &p.allocations {
                let units = a.total_units();
                claims.insert(format!("resources.{}", a.kind), units.to_string());
                resources.push((a.kind.to_string(), units));
            }
            // Replication fulfillment is also claimable (§4: features
            // "cannot be verified with today's remote attestation
            // primitives" — UDC's extended quotes cover them).
            claims.insert("replicas".to_string(), p.replica_devices.len().to_string());
            let quote = rot.quote(nonce, claims);
            let expected_events = vec![
                "boot: udc-runtime v1".to_string(),
                format!("load: {}@{}", id, m.identity_hex()),
            ];
            let mut policy = policy_for_module(
                &expected_events,
                &isolation,
                p.env.single_tenant,
                &resources,
            );
            policy = policy.require("replicas", m.spec.dist.replication.to_string());
            report
                .modules
                .insert(id.clone(), check_quote(&verifier, &quote, &nonce, &policy));
        }
        if self.obs.is_enabled() {
            report.billing = Some(self.reconcile_billing(dep));
            self.obs.event(
                EventKind::Verification,
                Labels::tenant(self.tenant.as_str()),
                &[
                    ("verified", FieldValue::from(report.verified())),
                    ("failed", FieldValue::from(report.failed())),
                    ("not_verifiable", FieldValue::from(report.not_verifiable())),
                    (
                        "billing_consistent",
                        FieldValue::from(
                            report
                                .billing
                                .as_ref()
                                .map(|b| b.consistent())
                                .unwrap_or(true),
                        ),
                    ),
                ],
            );
        }
        report
    }

    /// Cross-checks what the provider billed (the
    /// `core.billed_microdollars` counters recorded at run time) against
    /// the tenant's own record of what it owes.
    ///
    /// With economics attached, the expected number is the sum of the
    /// tenant ledger's debits for the module — the append-only entries
    /// `run` metered at the prices agreed at submit — so verification
    /// audits the actual system of record instead of recomputing costs
    /// from scratch. Without economics the seed behavior remains: the
    /// tenant recomputes from telemetry-observed holding windows at the
    /// submit-time prices. Per-slice rounding means recomputation is
    /// not bit-exact, so bills within 1% (or 2 micro-dollars absolute)
    /// pass either way.
    fn reconcile_billing(&self, dep: &Deployment) -> BillingReconciliation {
        let mut rec = BillingReconciliation {
            tolerance: 0.01,
            ..Default::default()
        };
        let ledger_gate = self
            .econ_gate
            .as_ref()
            .map(|g| g.lock().expect("quota gate poisoned"));
        for (id, m) in &dep.placement.modules {
            let labels = Labels::module(self.tenant.as_str(), id.as_str());
            let billed = self.obs.counter("core.billed_microdollars", &labels);
            let window = self.obs.counter("core.module_window_us", &labels);
            if billed == 0 && window == 0 {
                continue; // Never ran with telemetry on: nothing to check.
            }
            let expected = ledger_gate
                .as_ref()
                .and_then(|g| g.account(&self.tenant))
                .map(|a| a.ledger.debits_for_module(id.as_str()))
                .unwrap_or_else(|| dep.billing.price_module(&self.dc, m, window));
            let slack = (expected as f64 * rec.tolerance).max(2.0);
            rec.modules.insert(
                id.clone(),
                BillingCheck {
                    billed,
                    expected,
                    within_tolerance: billed.abs_diff(expected) as f64 <= slack,
                },
            );
        }
        rec
    }

    /// One round of §3.2 runtime fine-tuning over a live deployment:
    /// samples each task module's usage (`observed_usage` maps module →
    /// fraction of its allocation actually used), lets the tuner decide,
    /// and applies resizes/migrations to the live allocations.
    ///
    /// Returns the number of adjustments applied. Call repeatedly as
    /// telemetry arrives; the EWMA smooths noisy samples.
    pub fn autoscale(
        &mut self,
        dep: &mut Deployment,
        tuner: &mut udc_sched::FineTuner,
        observed_usage: &BTreeMap<ModuleId, f64>,
    ) -> usize {
        let _span = self.obs.span("cloud.autoscale");
        let now = self.dc.clock().now();
        for (id, usage) in observed_usage {
            self.dc
                .telemetry_mut()
                .sample_usage(id.as_str(), now, *usage);
        }
        let mut applied = 0;
        let ids: Vec<ModuleId> = dep.placement.modules.keys().cloned().collect();
        for id in ids {
            let (current_units, device, kind) = {
                let p = &dep.placement.modules[&id];
                (
                    p.allocations[0].total_units(),
                    p.primary_device,
                    p.placed_kind,
                )
            };
            let headroom = self
                .dc
                .pool(kind)
                .and_then(|pool| pool.device(device))
                .map(|d| d.free_for(&self.tenant))
                .unwrap_or(0);
            let action = tuner.evaluate(id.as_str(), self.dc.telemetry(), current_units, headroom);
            let Some(action) = action else { continue };
            let (action_name, action_units) = match &action {
                udc_sched::TuneAction::Resize { to_units, .. } => ("resize", *to_units),
                udc_sched::TuneAction::Migrate { units, .. } => ("migrate", *units),
            };
            let p = dep.placement.modules.get_mut(&id).expect("module placed");
            let result = match action {
                udc_sched::TuneAction::Resize { to_units, .. } => {
                    self.scheduler.resize(&mut self.dc, p, to_units)
                }
                udc_sched::TuneAction::Migrate { units, .. } => {
                    self.scheduler.migrate(&mut self.dc, p, units)
                }
            };
            if result.is_ok() {
                applied += 1;
                self.obs.incr(
                    "core.autoscale_actions",
                    Labels::tenant(self.tenant.as_str()),
                    1,
                );
                self.obs.event(
                    EventKind::Autoscale,
                    Labels::module(self.tenant.as_str(), id.as_str()),
                    &[
                        ("action", FieldValue::from(action_name)),
                        ("from_units", FieldValue::from(current_units)),
                        ("to_units", FieldValue::from(action_units)),
                    ],
                );
            }
        }
        applied
    }

    /// Tears down a deployment: stops environments and releases every
    /// allocation. Idempotent.
    pub fn teardown(&mut self, dep: &mut Deployment) {
        if dep.released {
            return;
        }
        for env in dep.environments.values_mut() {
            if env.state == EnvState::Running {
                env.stop();
            }
        }
        self.scheduler.release_app(&mut self.dc, &dep.placement);
        // Return the admission footprint to the tenant's quota (the
        // scheduler committed it when placement succeeded).
        if let Some(gate) = &self.econ_gate {
            gate.lock()
                .expect("quota gate poisoned")
                .release(&self.tenant, &dep.admitted_demand);
        }
        dep.released = true;
        self.obs.event(
            EventKind::Teardown,
            Labels::tenant(self.tenant.as_str()),
            &[
                ("app", FieldValue::from(dep.ir.app.name.as_str())),
                ("modules", FieldValue::from(dep.placement.modules.len())),
            ],
        );
    }

    /// Data-movement metric for a deployment (experiment E13).
    pub fn movement(&self, dep: &Deployment) -> (u64, u64) {
        data_movement(&self.dc, &dep.ir.app, &dep.placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_spec::{
        DataProtection, DataSpec, DistributedAspect, ExecEnvAspect, IsolationLevel, ResourceAspect,
        ResourceKind, TaskSpec,
    };

    fn small_app() -> AppSpec {
        let mut app = AppSpec::new("demo");
        app.add_task(
            TaskSpec::new("A1")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
                .with_work(100),
        );
        app.add_task(
            TaskSpec::new("A2")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
                .with_work(200),
        );
        app.add_data(
            DataSpec::new("S1")
                .with_bytes(8 << 20)
                .with_exec_env(
                    ExecEnvAspect::default().with_protection(DataProtection::ENCRYPT_AND_INTEGRITY),
                )
                .with_dist(DistributedAspect::default().replication(2)),
        );
        app.add_edge("A1", "A2", EdgeKind::Dependency).unwrap();
        app.add_edge("A2", "S1", EdgeKind::Access).unwrap();
        app
    }

    #[test]
    fn submit_run_teardown_cycle() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let mut dep = cloud.submit(&small_app()).unwrap();
        assert_eq!(dep.environments.len(), 3);
        assert_eq!(dep.objects.len(), 3);
        let report = cloud.run(&dep);
        assert!(report.makespan_us > 0);
        assert!(report.cost.total > 0);
        assert_eq!(report.timings.len(), 3);
        cloud.teardown(&mut dep);
        // All capacity returned.
        for kind in ResourceKind::ALL {
            if let Some(pool) = cloud.datacenter().pool(kind) {
                assert_eq!(pool.total_used(), 0, "{kind} leaked");
            }
        }
        // Idempotent.
        cloud.teardown(&mut dep);
    }

    #[test]
    fn dependencies_serialize_execution() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let dep = cloud.submit(&small_app()).unwrap();
        let report = cloud.run(&dep);
        let (a1_start, a1_end) = report.timings[&ModuleId::from("A1")];
        let (a2_start, _) = report.timings[&ModuleId::from("A2")];
        assert!(a2_start >= a1_end, "A2 must wait for A1");
        assert_eq!(a1_start, 0);
    }

    #[test]
    fn protected_data_is_sealed() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let dep = cloud.submit(&small_app()).unwrap();
        let report = cloud.run(&dep);
        assert_eq!(report.sealed_messages, 1, "one protected access edge");
        assert_eq!(report.sealed_bytes, 8 << 20);
    }

    #[test]
    fn unprotected_data_not_sealed() {
        let mut app = AppSpec::new("plain");
        app.add_task(TaskSpec::new("A1").with_work(10));
        app.add_data(DataSpec::new("S1").with_bytes(1024));
        app.add_edge("A1", "S1", EdgeKind::Access).unwrap();
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let dep = cloud.submit(&app).unwrap();
        let report = cloud.run(&dep);
        assert_eq!(report.sealed_messages, 0);
    }

    #[test]
    fn verification_of_strongest_isolation() {
        let mut app = AppSpec::new("secure");
        app.add_task(
            TaskSpec::new("A1")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 4))
                .with_exec_env(ExecEnvAspect::isolation(IsolationLevel::Strongest))
                .with_work(50),
        );
        app.add_task(TaskSpec::new("B1").with_work(10)); // Weak: not verifiable.
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let dep = cloud.submit(&app).unwrap();
        let report = cloud.verify_deployment(&dep);
        assert_eq!(
            report.modules[&ModuleId::from("A1")],
            ModuleVerification::Verified
        );
        assert_eq!(
            report.modules[&ModuleId::from("B1")],
            ModuleVerification::NotVerifiable
        );
        assert!(report.all_fulfilled());
    }

    #[test]
    fn exact_fit_allocation_matches_demand() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let dep = cloud.submit(&small_app()).unwrap();
        let allocated = dep.placement.allocated_vector();
        assert_eq!(allocated.get(ResourceKind::Cpu), 4, "2 + 2 cores exactly");
        // 8 MiB × 2 replicas on storage.
        assert_eq!(allocated.get(ResourceKind::Ssd), 16);
    }

    #[test]
    fn conflict_error_policy_rejects_at_submit() {
        use udc_spec::ConsistencyLevel;
        let mut app = AppSpec::new("c");
        app.add_task(TaskSpec::new("A"));
        app.add_task(TaskSpec::new("B"));
        app.add_data(DataSpec::new("S"));
        app.add_access_with("A", "S", Some(ConsistencyLevel::Sequential), None)
            .unwrap();
        app.add_access_with("B", "S", Some(ConsistencyLevel::Release), None)
            .unwrap();
        let mut cloud = UdcCloud::new(CloudConfig {
            conflict_policy: ConflictPolicy::Error,
            ..Default::default()
        });
        assert!(matches!(
            cloud.submit(&app),
            Err(CloudError::Spec(SpecError::Conflict(_)))
        ));
    }

    #[test]
    fn replicated_data_has_fanned_out_object() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let dep = cloud.submit(&small_app()).unwrap();
        let s1 = dep
            .objects
            .iter()
            .find(|o| o.module == ModuleId::from("S1"))
            .unwrap();
        assert_eq!(s1.fan_out(), 2);
        let devices = s1.devices();
        assert_ne!(devices[0], devices[1]);
    }

    #[test]
    fn telemetry_reconciles_over_indexed_pools() {
        // Regression guard for the indexed-pool rewrite: pool-level
        // gauges and held slices must still reconcile exactly with the
        // (now O(1)) pool accounting, through verification and teardown.
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let obs = cloud.enable_telemetry();
        let mut dep = cloud.submit(&small_app()).unwrap();
        cloud.run(&dep);
        cloud.datacenter().observe_pool_levels();

        let held: u64 = dep
            .placement
            .modules
            .values()
            .flat_map(|m| m.allocations.iter())
            .map(|a| a.total_units())
            .sum();
        let mut used_total = 0;
        for kind in ResourceKind::ALL {
            let Some(pool) = cloud.datacenter().pool(kind) else {
                continue;
            };
            let used = pool.total_used();
            used_total += used;
            let name = format!("hal.pool.{}.used_units", kind.name());
            match obs.gauge(&name, &Labels::none()) {
                Some((value, hwm)) => {
                    assert_eq!(value as u64, used, "{kind} gauge out of sync");
                    assert!(hwm >= value);
                }
                None => assert_eq!(used, 0, "{kind} used but never observed"),
            }
        }
        assert_eq!(held, used_total, "held slices must equal pool accounting");

        let report = cloud.verify_deployment(&dep);
        assert!(report.all_fulfilled());

        cloud.teardown(&mut dep);
        cloud.datacenter().observe_pool_levels();
        for kind in ResourceKind::ALL {
            let name = format!("hal.pool.{}.used_units", kind.name());
            if let Some((value, _)) = obs.gauge(&name, &Labels::none()) {
                assert_eq!(value, 0, "{kind} gauge must drain on teardown");
            }
        }
    }

    #[test]
    fn honest_billing_reconciles_within_tolerance() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        cloud.enable_telemetry();
        let dep = cloud.submit(&small_app()).unwrap();
        cloud.run(&dep);
        let report = cloud.verify_deployment(&dep);
        let rec = report.billing.as_ref().expect("reconciliation ran");
        assert!(!rec.modules.is_empty());
        assert!(rec.consistent(), "honest bill flagged: {rec:?}");
        assert!(report.all_fulfilled());
    }

    #[test]
    fn injected_overbilling_is_flagged() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        cloud.enable_telemetry();
        let dep = cloud.submit(&small_app()).unwrap();
        // The provider silently raises prices after the deployment was
        // accepted: run-time charges use the inflated model while the
        // deployment still carries the advertised one.
        cloud.billing.price_multiplier = 1.5;
        cloud.run(&dep);
        let report = cloud.verify_deployment(&dep);
        let rec = report.billing.as_ref().expect("reconciliation ran");
        assert!(!rec.consistent());
        assert!(!rec.flagged().is_empty(), "over-billed modules flagged");
        assert!(!report.all_fulfilled(), "verification must flag the bill");
    }

    #[test]
    fn ledger_reconciliation_matches_honest_billing_exactly() {
        use udc_economics::{PlanSpec, QuotaGate};
        let mut cloud = UdcCloud::new(CloudConfig::default());
        cloud.enable_telemetry();
        let mut gate = QuotaGate::new();
        gate.open_account("tenant", PlanSpec::unlimited("open"), 0);
        let gate = udc_economics::shared(gate);
        cloud.attach_economics(gate.clone());

        let dep = cloud.submit(&small_app()).unwrap();
        cloud.run(&dep);
        let report = cloud.verify_deployment(&dep);
        let rec = report.billing.as_ref().expect("reconciliation ran");
        assert!(!rec.modules.is_empty());
        // With a ledger attached the reconciler compares against posted
        // debits rather than recomputing, so honest billing matches to
        // the micro-dollar.
        assert!(rec.consistent(), "ledger-reconciled bill flagged: {rec:?}");
        let g = gate.lock().unwrap();
        let acct = g.account("tenant").unwrap();
        assert!(
            acct.ledger.total_debits() > 0,
            "usage windows were metered into the ledger"
        );
        assert!(acct.ledger.conservation_holds());
    }

    #[test]
    fn ledger_reconciliation_flags_post_agreement_price_raise() {
        use udc_economics::{PlanSpec, QuotaGate};
        let mut cloud = UdcCloud::new(CloudConfig::default());
        cloud.enable_telemetry();
        let mut gate = QuotaGate::new();
        gate.open_account("tenant", PlanSpec::unlimited("open"), 0);
        cloud.attach_economics(udc_economics::shared(gate));

        let dep = cloud.submit(&small_app()).unwrap();
        // Silent price raise after agreement: provider-side counters
        // bill at the new model, but the ledger debits at the prices
        // the deployment was accepted under — the mismatch is fraud.
        cloud.billing.price_multiplier = 2.0;
        cloud.run(&dep);
        let report = cloud.verify_deployment(&dep);
        let rec = report.billing.as_ref().expect("reconciliation ran");
        assert!(!rec.consistent(), "price raise must be flagged");
        assert!(!rec.flagged().is_empty());
        assert!(!report.all_fulfilled());
    }

    #[test]
    fn billing_reflects_price_multiplier() {
        let mut base_cloud = UdcCloud::new(CloudConfig::default());
        let dep = base_cloud.submit(&small_app()).unwrap();
        let base = base_cloud.run(&dep);

        let mut pricey_cloud = UdcCloud::new(CloudConfig {
            billing: BillingModel {
                price_multiplier: 1.4,
                ..Default::default()
            },
            ..Default::default()
        });
        let dep2 = pricey_cloud.submit(&small_app()).unwrap();
        let pricey = pricey_cloud.run(&dep2);
        assert!(pricey.cost.total > base.cost.total);
    }
}

#[cfg(test)]
mod autoscale_tests {
    use super::*;
    use udc_sched::{FineTuner, TunerConfig};
    use udc_spec::{AppSpec, ResourceAspect, ResourceKind, TaskSpec};

    fn one_task(cores: u64) -> AppSpec {
        let mut app = AppSpec::new("a");
        app.add_task(
            TaskSpec::new("T")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, cores)),
        );
        app
    }

    #[test]
    fn autoscale_grows_starved_module() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let mut dep = cloud.submit(&one_task(4)).unwrap();
        let mut tuner = FineTuner::new(TunerConfig::default());
        let mut usage = BTreeMap::new();
        // The module is saturated: needs more than its 4 cores.
        usage.insert(ModuleId::from("T"), 1.5f64);
        let applied = cloud.autoscale(&mut dep, &mut tuner, &usage);
        assert_eq!(applied, 1);
        let units = dep.placement.modules[&ModuleId::from("T")].allocations[0].total_units();
        assert!(units > 4, "grown to {units}");
        cloud.teardown(&mut dep);
    }

    #[test]
    fn autoscale_shrinks_idle_module_over_rounds() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let mut dep = cloud.submit(&one_task(32)).unwrap();
        let mut tuner = FineTuner::new(TunerConfig::default());
        for _ in 0..6 {
            let units = dep.placement.modules[&ModuleId::from("T")].allocations[0].total_units();
            let mut usage = BTreeMap::new();
            usage.insert(ModuleId::from("T"), 4.0 / units as f64);
            cloud.autoscale(&mut dep, &mut tuner, &usage);
        }
        let final_units = dep.placement.modules[&ModuleId::from("T")].allocations[0].total_units();
        assert!(final_units < 16, "shrunk from 32 to {final_units}");
        // Usage of the true need (4 cores) is now inside the band.
        assert!(4.0 / final_units as f64 >= 0.4);
        cloud.teardown(&mut dep);
    }

    #[test]
    fn autoscale_in_band_module_untouched() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let mut dep = cloud.submit(&one_task(8)).unwrap();
        let mut tuner = FineTuner::new(TunerConfig::default());
        let mut usage = BTreeMap::new();
        usage.insert(ModuleId::from("T"), 0.7f64);
        let applied = cloud.autoscale(&mut dep, &mut tuner, &usage);
        assert_eq!(applied, 0);
        cloud.teardown(&mut dep);
    }
}
