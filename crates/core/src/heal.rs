//! The self-healing repair loop (§3.4).
//!
//! Users "define how failures are handled for each domain (e.g.,
//! whether to re-execute a module or recover from a user-defined
//! checkpoint)" — but a definition is worthless unless the provider
//! closes the loop from an injected hardware failure back to a
//! converged, verifiable deployment. [`UdcCloud::advance`] is that
//! loop: it drains crash/repair events from the datacenter and drives
//! every impacted module through a traced state machine:
//!
//! ```text
//!            device crash
//!                 │
//!                 ▼
//!   Healthy ──► detect ──► evict ──► re-place ──► re-launch ──► recover ──► Healthy
//!                 │                     │
//!                 │              alloc fails: bounded retries,
//!                 │              exponential backoff + seeded jitter
//!                 │                     │ retries exhausted
//!                 │                     ▼
//!                 └────────────────► Degraded ──(capacity repaired)──► re-place …
//! ```
//!
//! Every transition is observable: repairs run under `heal.detect` /
//! `heal.replace` / `heal.recover` spans joined to one `cloud.heal`
//! trace, candidate rejections carry the `evicted` / `crash_excluded` /
//! `degraded` reason codes, and the hub records an MTTR histogram plus
//! eviction / retry / replayed-message counters.

use std::collections::{BTreeMap, BTreeSet};

use crate::cloud::{Deployment, UdcCloud};
use bytes::Bytes;
use udc_actor::{
    Actor, ActorError, ActorId, ActorRuntime, Ctx, Message, ParSystem, SupervisionPolicy, System,
};
use udc_dist::{recover, safe_truncation_seq, CheckpointStore, RecoveryOutcome, RecoveryStrategy};
use udc_economics::LifecycleEvent;
use udc_hal::DeviceId;
use udc_isolate::{Environment, InstanceId};
use udc_sched::StartMode;
use udc_spec::{AppSpec, FailureHandling, ModuleId};
use udc_telemetry::{Decision, EventKind, FieldValue, Labels, Micros, ReasonCode};

/// Modelled cost of re-processing one replayed message (matches E9).
pub const MSG_COST_US: u64 = 1_000;
/// Modelled cost of restoring a checkpoint snapshot (matches E9).
pub const RESTORE_COST_US: u64 = 50_000;

/// Repair-loop tuning knobs, carried per deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealConfig {
    /// Re-placement attempts before a module is declared [`ModuleHealth::Degraded`].
    pub max_retries: u32,
    /// First retry delay; attempt `n` waits `base << (n-1)` (capped).
    pub base_backoff_us: Micros,
    /// Ceiling on the exponential backoff.
    pub max_backoff_us: Micros,
    /// Seed for the deterministic retry jitter (same seed → identical
    /// schedules, which keeps chaos artifacts byte-reproducible).
    pub jitter_seed: u64,
}

impl Default for HealConfig {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base_backoff_us: 10_000,
            max_backoff_us: 5_000_000,
            jitter_seed: 0x75dc_c0de,
        }
    }
}

/// Where a module stands in the repair state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleHealth {
    /// Placed, launched, allocations all on live devices.
    Healthy,
    /// Lost to a crash; a re-placement attempt is scheduled.
    Repairing {
        /// Failed re-placement attempts so far.
        attempt: u32,
        /// Sim-clock time of the next attempt.
        next_retry_us: Micros,
        /// When the crash was detected (MTTR epoch).
        detected_us: Micros,
    },
    /// Retries exhausted: the module runs nowhere until repair events
    /// return capacity, at which point healing resumes automatically.
    Degraded {
        /// When the crash was detected (MTTR epoch, preserved across
        /// the degraded interval so MTTR stays honest).
        detected_us: Micros,
    },
}

/// Per-deployment repair state: one [`ModuleHealth`] per module that
/// has ever been impacted (absent = healthy).
#[derive(Debug, Clone, Default)]
pub struct HealthState {
    /// Tuning knobs (public so harnesses can tighten retry budgets).
    pub config: HealConfig,
    modules: BTreeMap<ModuleId, ModuleHealth>,
}

impl HealthState {
    /// The module's current health (absent entries are healthy).
    pub fn module(&self, id: &ModuleId) -> ModuleHealth {
        self.modules
            .get(id)
            .copied()
            .unwrap_or(ModuleHealth::Healthy)
    }

    /// True when every module is healthy.
    pub fn is_converged(&self) -> bool {
        self.modules
            .values()
            .all(|h| matches!(h, ModuleHealth::Healthy))
    }

    /// Modules currently degraded, in id order.
    pub fn degraded_modules(&self) -> Vec<ModuleId> {
        self.modules
            .iter()
            .filter(|(_, h)| matches!(h, ModuleHealth::Degraded { .. }))
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Modules with an in-flight repair, in id order.
    pub fn repairing_modules(&self) -> Vec<ModuleId> {
        self.modules
            .iter()
            .filter(|(_, h)| matches!(h, ModuleHealth::Repairing { .. }))
            .map(|(id, _)| id.clone())
            .collect()
    }

    fn due_repairs(&self, now: Micros) -> Vec<ModuleId> {
        self.modules
            .iter()
            .filter(|(_, h)| matches!(h, ModuleHealth::Repairing { next_retry_us, .. } if *next_retry_us <= now))
            .map(|(id, _)| id.clone())
            .collect()
    }

    fn mark_detected(&mut self, id: &ModuleId, now: Micros) {
        self.modules.insert(
            id.clone(),
            ModuleHealth::Repairing {
                attempt: 0,
                next_retry_us: now,
                detected_us: now,
            },
        );
    }

    /// Degraded → Repairing (capacity returned); the MTTR epoch is kept.
    fn mark_reheal(&mut self, id: &ModuleId, now: Micros) {
        if let Some(ModuleHealth::Degraded { detected_us }) = self.modules.get(id).copied() {
            self.modules.insert(
                id.clone(),
                ModuleHealth::Repairing {
                    attempt: 0,
                    next_retry_us: now,
                    detected_us,
                },
            );
        }
    }

    /// Marks the module healthy again, returning (attempts, detected_us).
    fn repair_complete(&mut self, id: &ModuleId) -> (u32, Micros) {
        let prior = self.modules.insert(id.clone(), ModuleHealth::Healthy);
        match prior {
            Some(ModuleHealth::Repairing {
                attempt,
                detected_us,
                ..
            }) => (attempt, detected_us),
            _ => (0, 0),
        }
    }

    fn schedule_retry(&mut self, id: &ModuleId, attempt: u32, next_retry_us: Micros) {
        let detected_us = match self.module(id) {
            ModuleHealth::Repairing { detected_us, .. }
            | ModuleHealth::Degraded { detected_us } => detected_us,
            ModuleHealth::Healthy => next_retry_us,
        };
        self.modules.insert(
            id.clone(),
            ModuleHealth::Repairing {
                attempt,
                next_retry_us,
                detected_us,
            },
        );
    }

    fn mark_degraded(&mut self, id: &ModuleId) {
        let detected_us = match self.module(id) {
            ModuleHealth::Repairing { detected_us, .. }
            | ModuleHealth::Degraded { detected_us } => detected_us,
            ModuleHealth::Healthy => 0,
        };
        self.modules
            .insert(id.clone(), ModuleHealth::Degraded { detected_us });
    }

    /// Economics: a suspended account's module is evicted into the
    /// degraded state — the same machinery as capacity exhaustion, with
    /// the suspension time as its MTTR epoch — but it re-heals only
    /// when the control plane reinstates it (`mark_reheal` on payment),
    /// never on device-repair events.
    fn mark_econ_suspended(&mut self, id: &ModuleId, now: Micros) {
        self.modules
            .insert(id.clone(), ModuleHealth::Degraded { detected_us: now });
    }
}

/// One completed module repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRepair {
    /// The healed module.
    pub module: ModuleId,
    /// Failed attempts before this one succeeded.
    pub attempts: u32,
    /// The device the module healed onto.
    pub new_device: DeviceId,
    /// Detection-to-recovered time, including the modelled replay /
    /// restore cost (the sim clock is tick-driven; recovery work is
    /// costed, not advanced).
    pub mttr_us: Micros,
    /// State recovery outcome (None when the module had no recoverable
    /// state seeded in the deployment's [`RecoveryModel`]).
    pub recovery: Option<RecoveryOutcome>,
}

/// What one [`UdcCloud::advance`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealReport {
    /// Devices that crashed this interval.
    pub crashed_devices: Vec<DeviceId>,
    /// Devices that came back this interval.
    pub repaired_devices: Vec<DeviceId>,
    /// Modules newly detected as lost.
    pub detected: Vec<ModuleId>,
    /// Allocations freed during eviction.
    pub evicted_allocations: u64,
    /// Warm-pool instances dropped from crashed devices.
    pub invalidated_warm: u64,
    /// Modules healed to completion this interval.
    pub repaired: Vec<ModuleRepair>,
    /// Modules whose re-placement failed and was rescheduled.
    pub retried: Vec<ModuleId>,
    /// Modules that exhausted retries and entered degraded mode.
    pub degraded: Vec<ModuleId>,
    /// Modules evicted because the tenant's account was suspended.
    pub suspended: Vec<ModuleId>,
    /// Modules scheduled for re-placement after payment reinstated the
    /// account (they then show up in `repaired` as healing completes).
    pub reinstated: Vec<ModuleId>,
}

impl HealReport {
    /// True when the interval needed no repair work at all.
    pub fn is_quiet(&self) -> bool {
        self.crashed_devices.is_empty()
            && self.repaired_devices.is_empty()
            && self.detected.is_empty()
            && self.repaired.is_empty()
            && self.retried.is_empty()
            && self.degraded.is_empty()
            && self.suspended.is_empty()
            && self.reinstated.is_empty()
    }
}

/// The deterministic per-module workload whose state the repair loop
/// recovers: an accumulator folding little-endian u64 payloads, exactly
/// the shape E9 uses, so replay/restore costs are comparable.
#[derive(Default)]
struct ModuleActor {
    sum: u64,
}

impl Actor for ModuleActor {
    fn on_message(&mut self, _ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
        let mut b = [0u8; 8];
        let n = msg.payload.len().min(8);
        b[..n].copy_from_slice(&msg.payload[..n]);
        self.sum = self.sum.wrapping_add(u64::from_le_bytes(b));
        Ok(())
    }

    fn reset(&mut self) {
        self.sum = 0;
    }

    fn snapshot(&self) -> Vec<u8> {
        self.sum.to_le_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut b = [0u8; 8];
        b.copy_from_slice(snapshot);
        self.sum = u64::from_le_bytes(b);
    }
}

/// Per-deployment recoverable state: a reliable message log (via a
/// deterministic actor system) plus user-defined checkpoints. The
/// harness seeds each module's workload; [`UdcCloud::advance`] recovers
/// it after a crash with the module's spec'd strategy.
///
/// The model is executor-agnostic: it drives any [`ActorRuntime`], so
/// the log it replays from can come from the single-threaded [`System`]
/// (the default) or the work-stealing [`ParSystem`] — both produce the
/// same per-actor log order, which is the only property recovery needs.
pub struct RecoveryModel {
    system: Box<dyn ActorRuntime>,
    checkpoints: CheckpointStore,
    expected: BTreeMap<ActorId, u64>,
    recovered: BTreeMap<ActorId, u64>,
}

impl Default for RecoveryModel {
    fn default() -> Self {
        Self::with_runtime(Box::new(System::new()))
    }
}

impl RecoveryModel {
    /// An empty model (modules recover with zero replay).
    pub fn new() -> Self {
        Self::default()
    }

    /// A model whose reliable log is produced by the given executor.
    pub fn with_runtime(system: Box<dyn ActorRuntime>) -> Self {
        Self {
            system,
            checkpoints: CheckpointStore::default(),
            expected: BTreeMap::new(),
            recovered: BTreeMap::new(),
        }
    }

    /// A model seeded through the work-stealing parallel executor —
    /// useful when a harness seeds large fleets and wants the fan-out
    /// parallelised. Recovery results are identical to the default.
    pub fn parallel(threads: usize) -> Self {
        Self::with_runtime(Box::new(ParSystem::new(threads)))
    }

    /// Seeds `module` with a processed stream of `messages` messages
    /// (payload `1..=messages` as LE u64), checkpointing every
    /// `checkpoint_every` messages when given. The stream lives in the
    /// reliable message log, so recovery can replay it.
    pub fn seed_workload(
        &mut self,
        module: &ModuleId,
        messages: u64,
        checkpoint_every: Option<u64>,
    ) {
        let id = ActorId::new(module.as_str());
        self.system.spawn(
            id.clone(),
            Box::<ModuleActor>::default(),
            SupervisionPolicy::Restart,
        );
        for i in 1..=messages {
            self.system
                .inject(id.clone(), Bytes::copy_from_slice(&i.to_le_bytes()));
        }
        self.system.run_until_quiescent(usize::MAX);
        let mut expected = 0u64;
        let mut count = 0u64;
        for m in self.system.log().entries().iter().filter(|m| m.to == id) {
            let mut b = [0u8; 8];
            let n = m.payload.len().min(8);
            b[..n].copy_from_slice(&m.payload[..n]);
            expected = expected.wrapping_add(u64::from_le_bytes(b));
            count += 1;
            if let Some(every) = checkpoint_every {
                if every > 0 && count.is_multiple_of(every) {
                    self.checkpoints
                        .save(&id, m.seq, expected.to_le_bytes().to_vec());
                }
            }
        }
        self.expected.insert(id, expected);
        // Checkpoints just advanced for this module: drop whatever log
        // prefix recovery can no longer need. Long-running deployments
        // would otherwise grow the reliable log without bound.
        self.compact();
    }

    /// Truncates the reliable log through the oldest checkpoint,
    /// provided *every* seeded module is checkpointed — one
    /// re-execution module pins the full history, because its recovery
    /// replays from sequence zero. Returns the entries dropped.
    pub fn compact(&mut self) -> usize {
        match safe_truncation_seq(&self.checkpoints, self.expected.keys()) {
            Some(seq) => self.system.truncate_log_through(seq),
            None => 0,
        }
    }

    /// Entries currently retained in the reliable message log.
    pub fn log_len(&self) -> usize {
        self.system.log().len()
    }

    /// Seeds every module of `app` with `messages_per_module` messages,
    /// deriving the checkpoint cadence from each module's failure
    /// aspect (one message models one millisecond of work, so
    /// `Checkpoint { interval_ms }` checkpoints every `interval_ms`
    /// messages).
    pub fn seed_app(&mut self, app: &AppSpec, messages_per_module: u64) {
        for m in app.iter_modules() {
            let every = match m.dist.failure.unwrap_or_default() {
                FailureHandling::Reexecute => None,
                FailureHandling::Checkpoint { interval_ms } => Some(interval_ms),
            };
            self.seed_workload(&m.id, messages_per_module, every);
        }
    }

    /// Recovers `module`'s state into a fresh instance using
    /// `strategy`. Returns `None` when the module was never seeded.
    pub fn recover_module(
        &mut self,
        module: &ModuleId,
        strategy: RecoveryStrategy,
    ) -> Option<RecoveryOutcome> {
        let id = ActorId::new(module.as_str());
        if !self.expected.contains_key(&id) {
            return None;
        }
        let mut fresh = ModuleActor::default();
        let out = recover(
            &id,
            &mut fresh,
            self.system.log(),
            &self.checkpoints,
            strategy,
        );
        self.recovered.insert(id, fresh.sum);
        Some(out)
    }

    /// The state the module held before the crash (seeded workloads).
    pub fn expected_state(&self, module: &ModuleId) -> Option<u64> {
        self.expected.get(&ActorId::new(module.as_str())).copied()
    }

    /// The state the last recovery reconstructed.
    pub fn recovered_state(&self, module: &ModuleId) -> Option<u64> {
        self.recovered.get(&ActorId::new(module.as_str())).copied()
    }
}

/// Deterministic splitmix64 step (for seeded retry jitter).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Exponential backoff with deterministic jitter: attempt `n` waits
/// `min(base << (n-1), max)` plus a seeded jitter of up to a quarter of
/// that, so concurrent repairs don't thundering-herd while identical
/// seeds still produce identical schedules.
pub fn backoff_delay_us(config: &HealConfig, module: &ModuleId, attempt: u32) -> Micros {
    let shift = attempt.saturating_sub(1).min(32);
    let raw = config
        .base_backoff_us
        .saturating_mul(1u64 << shift)
        .min(config.max_backoff_us);
    let jitter_space = raw / 4 + 1;
    let h = splitmix64(config.jitter_seed ^ fnv1a(module.as_str().as_bytes()) ^ attempt as u64);
    raw + h % jitter_space
}

impl UdcCloud {
    /// Advances virtual time, applying failure events and driving the
    /// repair loop over `dep`: *detect → evict → re-place → re-launch →
    /// recover*. Call repeatedly (e.g. from a chaos harness) until
    /// [`HealthState::is_converged`]; degraded modules re-heal on their
    /// own once repair events return capacity.
    pub fn advance(&mut self, dep: &mut Deployment, delta_us: u64) -> HealReport {
        let tick = self.dc.tick_events(delta_us);
        for &d in &tick.crashed {
            self.dead_devices.insert(d);
        }
        for &d in &tick.repaired {
            self.dead_devices.remove(&d);
        }
        let now = self.dc.clock().now();
        let mut report = HealReport {
            crashed_devices: tick.crashed.clone(),
            repaired_devices: tick.repaired.clone(),
            ..Default::default()
        };

        // Evict warm-pool instances pinned to freshly dead hardware.
        for &d in &tick.crashed {
            report.invalidated_warm += self.scheduler.warm_pool_mut().invalidate_device(d) as u64;
        }
        if report.invalidated_warm > 0 {
            self.obs.incr(
                "heal.warm_invalidated",
                Labels::none(),
                report.invalidated_warm,
            );
        }

        // Settle the tenant's account before computing impact: a
        // suspension this interval evicts modules (they must not count
        // as healthy below), and a reinstatement schedules repairs due
        // now (so the early return can't skip them).
        self.settle_economics(dep, now, &mut report);

        // A module is impacted when any of its slices or replica
        // devices sits on a dead device — or on one that crashed this
        // interval, even if a same-tick repair already brought the
        // (now empty) device back.
        let mut lost: BTreeSet<DeviceId> = self.dead_devices.clone();
        lost.extend(tick.crashed.iter().copied());
        let impacted: Vec<ModuleId> = dep
            .placement
            .modules
            .iter()
            .filter(|(id, _)| dep.health.module(id) == ModuleHealth::Healthy)
            .filter(|(_, p)| {
                p.allocations
                    .iter()
                    .flat_map(|a| a.slices.iter())
                    .any(|s| lost.contains(&s.device))
                    || p.replica_devices.iter().any(|d| lost.contains(d))
            })
            .map(|(id, _)| id.clone())
            .collect();

        // Device repairs re-heal capacity-degraded modules, but never
        // economically suspended ones: those wait for payment.
        let reheal: Vec<ModuleId> = if tick.repaired.is_empty() {
            Vec::new()
        } else {
            dep.health
                .degraded_modules()
                .into_iter()
                .filter(|id| !dep.econ_suspended.contains(id))
                .collect()
        };
        if impacted.is_empty() && reheal.is_empty() && dep.health.due_repairs(now).is_empty() {
            return report;
        }

        // Something to do: mint one trace for the whole repair round.
        let root = self.obs.trace_root("cloud.heal");
        let ctx = root.ctx();

        // detect + evict.
        if !impacted.is_empty() {
            let dspan = self.obs.span_opt(ctx.as_ref(), "heal.detect");
            let dctx = dspan.ctx().or(ctx);
            for id in &impacted {
                let (dead_here, allocations): (Vec<DeviceId>, Vec<_>) = {
                    let p = &dep.placement.modules[id];
                    let mut dead: BTreeSet<DeviceId> = p
                        .allocations
                        .iter()
                        .flat_map(|a| a.slices.iter().map(|s| s.device))
                        .filter(|d| lost.contains(d))
                        .collect();
                    dead.extend(p.replica_devices.iter().filter(|d| lost.contains(d)));
                    (dead.into_iter().collect(), p.allocations.clone())
                };
                if self.obs.is_enabled() {
                    for d in &dead_here {
                        self.obs.decide(Decision {
                            ctx: dctx,
                            stage: "heal.detect",
                            module: id.as_str(),
                            candidate: &format!("dev{}", d.0),
                            accepted: false,
                            reason: ReasonCode::Evicted,
                            score: None,
                            detail: "device crashed; allocation lost".to_string(),
                        });
                    }
                }
                // Evict: free every allocation. Slices on dead devices
                // were already wiped by `Device::fail`, so release is a
                // clamped no-op there; surviving slices return real
                // capacity. The placement entry is cleared so a later
                // teardown (or a second crash) can never double-free.
                for a in &allocations {
                    self.dc.release(a);
                }
                report.evicted_allocations += allocations.len() as u64;
                self.obs.incr(
                    "heal.evictions",
                    Labels::module(self.tenant.as_str(), id.as_str()),
                    allocations.len() as u64,
                );
                if let Some(p) = dep.placement.modules.get_mut(id) {
                    p.allocations.clear();
                }
                // The isolate died with its device: retire the handle.
                if let Some(env) = dep.environments.get_mut(id) {
                    if env.is_running() {
                        env.stop();
                    }
                }
                dep.health.mark_detected(id, now);
                report.detected.push(id.clone());
                self.obs.event(
                    EventKind::Failure,
                    Labels::module(self.tenant.as_str(), id.as_str()),
                    &[
                        ("action", FieldValue::from("detect")),
                        ("dead_devices", FieldValue::from(dead_here.len())),
                        ("evicted_allocations", FieldValue::from(allocations.len())),
                    ],
                );
            }
        }
        for id in &reheal {
            dep.health.mark_reheal(id, now);
        }

        // re-place + re-launch + recover every due module, in id order.
        for id in dep.health.due_repairs(now) {
            self.repair_module(dep, &id, now, ctx, &mut report);
        }
        report
    }

    /// Settles the tenant's account against the sim clock and applies
    /// the resulting lifecycle transitions to the deployment: *overdue*
    /// is advisory, *degraded* emits audit decisions but keeps modules
    /// running, *suspended* evicts every healthy module through the
    /// same machinery as a capacity failure (ledger-auditable, with a
    /// zero-amount debit recording the eviction), and *reinstated*
    /// schedules evicted modules for immediate re-placement.
    fn settle_economics(&mut self, dep: &mut Deployment, now: Micros, report: &mut HealReport) {
        let Some(gate) = self.econ_gate.clone() else {
            return;
        };
        let events: Vec<LifecycleEvent> = {
            let mut g = gate.lock().expect("quota gate poisoned");
            match g.account_mut(&self.tenant) {
                Some(acct) => acct.settle(now),
                None => return,
            }
        };
        for ev in events {
            match ev {
                LifecycleEvent::Renewed { .. } => {
                    self.obs.incr("econ.renewals", Labels::none(), 1);
                }
                LifecycleEvent::BecameOverdue { .. } => {
                    self.obs.incr("econ.overdue", Labels::none(), 1);
                }
                LifecycleEvent::Degraded { .. } => {
                    // Advisory: the tenant keeps running, but every
                    // healthy module gets an audit record so the trail
                    // explains later throttling or suspension.
                    if self.obs.is_enabled() {
                        let healthy: Vec<ModuleId> = dep
                            .placement
                            .modules
                            .keys()
                            .filter(|id| dep.health.module(id) == ModuleHealth::Healthy)
                            .cloned()
                            .collect();
                        for id in &healthy {
                            self.obs.decide(Decision {
                                ctx: None,
                                stage: "econ.degrade",
                                module: id.as_str(),
                                candidate: self.tenant.as_str(),
                                accepted: false,
                                reason: ReasonCode::Degraded,
                                score: None,
                                detail: "account overdue past degrade threshold; \
                                         service degraded"
                                    .to_string(),
                            });
                        }
                    }
                    self.obs.incr("econ.degradations", Labels::none(), 1);
                }
                LifecycleEvent::Suspended { .. } => {
                    let healthy: Vec<ModuleId> = dep
                        .placement
                        .modules
                        .keys()
                        .filter(|id| dep.health.module(id) == ModuleHealth::Healthy)
                        .cloned()
                        .collect();
                    for id in &healthy {
                        let allocations = dep.placement.modules[id].allocations.clone();
                        for a in &allocations {
                            self.dc.release(a);
                        }
                        report.evicted_allocations += allocations.len() as u64;
                        if let Some(p) = dep.placement.modules.get_mut(id) {
                            p.allocations.clear();
                        }
                        if let Some(env) = dep.environments.get_mut(id) {
                            if env.is_running() {
                                env.stop();
                            }
                        }
                        dep.health.mark_econ_suspended(id, now);
                        dep.econ_suspended.insert(id.clone());
                        if self.obs.is_enabled() {
                            self.obs.decide(Decision {
                                ctx: None,
                                stage: "econ.suspend",
                                module: id.as_str(),
                                candidate: self.tenant.as_str(),
                                accepted: false,
                                reason: ReasonCode::Suspended,
                                score: None,
                                detail: "account overdue past grace; module evicted".to_string(),
                            });
                        }
                        {
                            let mut g = gate.lock().expect("quota gate poisoned");
                            if let Some(acct) = g.account_mut(&self.tenant) {
                                acct.charge(now, 0, Some(id.as_str()), "suspension eviction");
                            }
                        }
                        report.suspended.push(id.clone());
                    }
                    self.obs.incr("econ.suspensions", Labels::none(), 1);
                }
                LifecycleEvent::Reinstated { .. } => {
                    let ids: Vec<ModuleId> = dep.econ_suspended.iter().cloned().collect();
                    for id in &ids {
                        dep.health.mark_reheal(id, now);
                        if self.obs.is_enabled() {
                            self.obs.decide(Decision {
                                ctx: None,
                                stage: "econ.reinstate",
                                module: id.as_str(),
                                candidate: self.tenant.as_str(),
                                accepted: true,
                                reason: ReasonCode::Accepted,
                                score: None,
                                detail: "payment cleared; re-placement scheduled".to_string(),
                            });
                        }
                        report.reinstated.push(id.clone());
                    }
                    dep.econ_suspended.clear();
                    self.obs.incr("econ.reinstatements", Labels::none(), 1);
                }
            }
        }
    }

    /// One re-place → re-launch → recover pass for `id`.
    fn repair_module(
        &mut self,
        dep: &mut Deployment,
        id: &ModuleId,
        now: Micros,
        ctx: Option<udc_telemetry::TraceCtx>,
        report: &mut HealReport,
    ) {
        let rspan = self.obs.span_opt(ctx.as_ref(), "heal.replace");
        let rctx = rspan.ctx().or(ctx);

        // Exclude every dead device, plus — failure-domain independence
        // — devices hosting modules of *other* explicit failure domains:
        // distinct domains must fail independently, so a healing module
        // never lands on hardware another domain already occupies.
        let mut exclude: BTreeSet<DeviceId> = self.dead_devices.clone();
        if let Some(my_domain) = dep
            .ir
            .app
            .module(id)
            .and_then(|m| m.dist.failure_domain.as_ref())
        {
            for (oid, op) in &dep.placement.modules {
                if oid == id {
                    continue;
                }
                let other = dep
                    .ir
                    .app
                    .module(oid)
                    .and_then(|m| m.dist.failure_domain.as_ref());
                if other.is_some_and(|d| d != my_domain) {
                    exclude.extend(op.replica_devices.iter().copied());
                }
            }
        }
        let exclude: Vec<DeviceId> = exclude.into_iter().collect();

        match self.scheduler.replace_module(
            &mut self.dc,
            &dep.ir.app,
            id,
            &dep.placement,
            &exclude,
            rctx,
        ) {
            Ok(placed) => {
                // Re-launch: a crashed environment cannot restart — mint
                // a fresh instance measured against the same identity.
                let device_key = self
                    .device_keys
                    .get(&placed.primary_device)
                    .copied()
                    .unwrap_or([0u8; 32]);
                let m_ir = dep.ir.module(id).expect("module exists in ir");
                let mut env =
                    Environment::new(InstanceId(self.next_instance), placed.env, device_key);
                self.next_instance += 1;
                let identity = format!("{}@{}", id, m_ir.identity_hex());
                {
                    let _launch = self.obs.span_opt(rctx.as_ref(), "isolate.launch");
                    env.start(placed.start_mode == StartMode::Warm, &identity);
                }
                dep.environments.insert(id.clone(), env);

                // Rebuild the module's vertical bundle over the new units.
                if let Some(obj) = dep.objects.iter_mut().find(|o| &o.module == id) {
                    obj.units = placed
                        .replica_devices
                        .iter()
                        .map(|&device| {
                            let unit = crate::bundle::ResourceUnit {
                                id: self.next_unit,
                                device,
                                kind: placed.placed_kind,
                                units: placed
                                    .allocations
                                    .first()
                                    .map(|a| a.total_units())
                                    .unwrap_or(0),
                                env: placed.env,
                                endpoint: format!("{}#{}", id, self.next_unit),
                            };
                            self.next_unit += 1;
                            unit
                        })
                        .collect();
                }
                let new_device = placed.primary_device;
                dep.placement.modules.insert(id.clone(), placed);

                // Recover state with the module's spec'd strategy.
                let strategy = match dep
                    .ir
                    .app
                    .module(id)
                    .and_then(|m| m.dist.failure)
                    .unwrap_or_default()
                {
                    FailureHandling::Reexecute => RecoveryStrategy::Reexecute,
                    FailureHandling::Checkpoint { .. } => RecoveryStrategy::FromCheckpoint,
                };
                let recovery = {
                    let _rec = self.obs.span_opt(rctx.as_ref(), "heal.recover");
                    dep.recovery.recover_module(id, strategy)
                };
                let recovery_us = recovery
                    .as_ref()
                    .map(|o| {
                        let restore = if o.strategy == RecoveryStrategy::FromCheckpoint {
                            RESTORE_COST_US
                        } else {
                            0
                        };
                        o.replayed as u64 * MSG_COST_US + restore
                    })
                    .unwrap_or(0);
                if let Some(o) = &recovery {
                    self.obs.incr(
                        "heal.replayed_messages",
                        Labels::module(self.tenant.as_str(), id.as_str()),
                        o.replayed as u64,
                    );
                }

                let (attempts, detected_us) = dep.health.repair_complete(id);
                let mttr_us = now.saturating_sub(detected_us) + recovery_us;
                self.obs.observe("heal.mttr_us", Labels::none(), mttr_us);
                self.obs.incr("heal.repairs", Labels::none(), 1);
                self.obs.event(
                    EventKind::Failure,
                    Labels::module(self.tenant.as_str(), id.as_str()),
                    &[
                        ("action", FieldValue::from("healed")),
                        ("device", FieldValue::from(new_device.0)),
                        ("attempts", FieldValue::from(attempts)),
                        ("mttr_us", FieldValue::from(mttr_us)),
                    ],
                );
                report.repaired.push(ModuleRepair {
                    module: id.clone(),
                    attempts,
                    new_device,
                    mttr_us,
                    recovery,
                });
            }
            Err(e) => {
                let attempt = match dep.health.module(id) {
                    ModuleHealth::Repairing { attempt, .. } => attempt + 1,
                    _ => 1,
                };
                if attempt > dep.health.config.max_retries {
                    dep.health.mark_degraded(id);
                    self.obs.decide(Decision {
                        ctx: rctx,
                        stage: "heal.replace",
                        module: id.as_str(),
                        candidate: "-",
                        accepted: false,
                        reason: ReasonCode::Degraded,
                        score: None,
                        detail: format!("retries exhausted ({attempt}): {e}"),
                    });
                    self.obs.incr("heal.degraded", Labels::none(), 1);
                    self.obs.event(
                        EventKind::Failure,
                        Labels::module(self.tenant.as_str(), id.as_str()),
                        &[
                            ("action", FieldValue::from("degraded")),
                            ("attempts", FieldValue::from(attempt)),
                        ],
                    );
                    report.degraded.push(id.clone());
                } else {
                    let delay = backoff_delay_us(&dep.health.config, id, attempt);
                    dep.health.schedule_retry(id, attempt, now + delay);
                    self.obs.incr("heal.retries", Labels::none(), 1);
                    report.retried.push(id.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::{CloudConfig, UdcCloud};
    use udc_hal::{DatacenterConfig, FailureEvent, FailurePlan, PoolConfig};
    use udc_spec::{DistributedAspect, ResourceAspect, ResourceKind, TaskSpec};

    fn one_task_app(dist: Option<DistributedAspect>) -> AppSpec {
        let mut app = AppSpec::new("heal-demo");
        let mut t = TaskSpec::new("T")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
            .with_work(100);
        if let Some(d) = dist {
            t = t.with_dist(d);
        }
        app.add_task(t);
        app
    }

    fn crash(at_us: u64, device: DeviceId) -> FailureEvent {
        FailureEvent {
            at_us,
            device,
            crash: true,
        }
    }

    fn repair(at_us: u64, device: DeviceId) -> FailureEvent {
        FailureEvent {
            at_us,
            device,
            crash: false,
        }
    }

    #[test]
    fn crash_detect_evict_replace_converges() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        cloud.enable_telemetry();
        let mut dep = cloud.submit(&one_task_app(None)).unwrap();
        let id = ModuleId::from("T");
        let dead = dep.placement.modules[&id].primary_device;

        cloud
            .datacenter_mut()
            .set_failure_plan(FailurePlan::from_events(vec![crash(5, dead)]));
        let report = cloud.advance(&mut dep, 10);

        assert_eq!(report.crashed_devices, vec![dead]);
        assert_eq!(report.detected, vec![id.clone()]);
        assert_eq!(report.repaired.len(), 1, "healed in the same interval");
        let healed = &report.repaired[0];
        assert_ne!(healed.new_device, dead, "must not heal onto the corpse");
        assert!(dep.health.is_converged());

        // No live allocation touches the dead device.
        for p in dep.placement.modules.values() {
            for a in &p.allocations {
                assert!(a.slices.iter().all(|s| s.device != dead));
            }
        }
        // The replacement environment is running and verifiable.
        assert!(dep.environments[&id].is_running());
        assert!(cloud.verify_deployment(&dep).all_fulfilled());
        cloud.teardown(&mut dep);
    }

    #[test]
    fn crash_excluded_candidate_is_audited_during_replacement() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let tel = cloud.enable_telemetry();
        let mut dep = cloud.submit(&one_task_app(None)).unwrap();
        let id = ModuleId::from("T");
        let dead = dep.placement.modules[&id].primary_device;

        cloud
            .datacenter_mut()
            .set_failure_plan(FailurePlan::from_events(vec![crash(5, dead)]));
        let report = cloud.advance(&mut dep, 10);
        assert_eq!(report.repaired.len(), 1);

        // The re-placement audit must show the corpse as a rejected
        // candidate — `udc-trace --explain` depends on this record.
        let snap = tel.snapshot();
        let excluded: Vec<_> = snap
            .decisions
            .iter()
            .filter(|d| d.reason == ReasonCode::CrashExcluded)
            .collect();
        assert!(
            !excluded.is_empty(),
            "expected a crash_excluded audit record for dev{}",
            dead.0
        );
        assert!(excluded
            .iter()
            .any(|d| d.candidate == format!("dev{}", dead.0) && !d.accepted));
        cloud.teardown(&mut dep);
    }

    #[test]
    fn quiet_interval_is_a_noop() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let mut dep = cloud.submit(&one_task_app(None)).unwrap();
        let report = cloud.advance(&mut dep, 1_000);
        assert!(report.is_quiet());
        assert!(dep.health.is_converged());
    }

    #[test]
    fn capacity_exhaustion_degrades_then_reheals_on_repair() {
        // One CPU device: a crash leaves nowhere to heal to.
        let mut cloud = UdcCloud::new(CloudConfig {
            datacenter: DatacenterConfig {
                pools: vec![
                    PoolConfig {
                        kind: ResourceKind::Cpu,
                        devices: 1,
                        capacity_per_device: 8,
                    },
                    PoolConfig {
                        kind: ResourceKind::Dram,
                        devices: 1,
                        capacity_per_device: 4096,
                    },
                ],
                ..Default::default()
            },
            ..Default::default()
        });
        cloud.enable_telemetry();
        let mut dep = cloud.submit(&one_task_app(None)).unwrap();
        dep.health.config.max_retries = 0; // degrade on the first failed attempt
        let id = ModuleId::from("T");
        let dead = dep.placement.modules[&id].primary_device;

        cloud
            .datacenter_mut()
            .set_failure_plan(FailurePlan::from_events(vec![
                crash(5, dead),
                repair(1_000, dead),
            ]));

        let report = cloud.advance(&mut dep, 10);
        assert_eq!(report.degraded, vec![id.clone()]);
        assert_eq!(dep.health.degraded_modules(), vec![id.clone()]);
        assert!(!dep.health.is_converged());

        // Capacity returns: the degraded module re-heals automatically.
        let report = cloud.advance(&mut dep, 2_000);
        assert_eq!(report.repaired_devices, vec![dead]);
        assert_eq!(report.repaired.len(), 1);
        assert!(dep.health.is_converged());
        // MTTR spans the whole degraded interval, not just the last try.
        assert!(report.repaired[0].mttr_us >= 2_000);
        cloud.teardown(&mut dep);
    }

    #[test]
    fn recovery_restores_seeded_state_from_checkpoint() {
        let app = one_task_app(Some(
            DistributedAspect::default().failure(FailureHandling::Checkpoint { interval_ms: 10 }),
        ));
        let mut cloud = UdcCloud::new(CloudConfig::default());
        cloud.enable_telemetry();
        let mut dep = cloud.submit(&app).unwrap();
        dep.recovery.seed_app(&app, 25);
        let id = ModuleId::from("T");
        let dead = dep.placement.modules[&id].primary_device;

        cloud
            .datacenter_mut()
            .set_failure_plan(FailurePlan::from_events(vec![crash(5, dead)]));
        let report = cloud.advance(&mut dep, 10);
        let healed = &report.repaired[0];
        let outcome = healed.recovery.as_ref().expect("state was seeded");
        assert_eq!(outcome.strategy, RecoveryStrategy::FromCheckpoint);
        // Checkpoint at message 20 of 25: only the suffix replays.
        assert_eq!(outcome.replayed, 5);
        assert_eq!(
            dep.recovery.recovered_state(&id),
            dep.recovery.expected_state(&id),
            "recovered state must match pre-crash state"
        );
        // MTTR includes the modelled restore + replay cost.
        assert!(healed.mttr_us >= RESTORE_COST_US + 5 * MSG_COST_US);
        cloud.teardown(&mut dep);
    }

    #[test]
    fn recovery_reexecutes_full_log_without_checkpoint() {
        let app = one_task_app(None); // default failure handling: Reexecute
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let mut dep = cloud.submit(&app).unwrap();
        dep.recovery.seed_app(&app, 12);
        let id = ModuleId::from("T");
        let dead = dep.placement.modules[&id].primary_device;

        cloud
            .datacenter_mut()
            .set_failure_plan(FailurePlan::from_events(vec![crash(1, dead)]));
        let report = cloud.advance(&mut dep, 10);
        let outcome = report.repaired[0].recovery.as_ref().unwrap();
        assert_eq!(outcome.strategy, RecoveryStrategy::Reexecute);
        assert_eq!(outcome.replayed, 12);
        assert_eq!(
            dep.recovery.recovered_state(&id),
            dep.recovery.expected_state(&id)
        );
    }

    #[test]
    fn failure_domains_stay_disjoint_through_healing() {
        let mut app = AppSpec::new("domains");
        app.add_task(
            TaskSpec::new("A")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
                .with_dist(DistributedAspect::default().failure_domain("east")),
        );
        app.add_task(
            TaskSpec::new("B")
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 2))
                .with_dist(DistributedAspect::default().failure_domain("west")),
        );
        let mut cloud = UdcCloud::new(CloudConfig::default());
        cloud.enable_telemetry();
        let mut dep = cloud.submit(&app).unwrap();
        let a = ModuleId::from("A");
        let b = ModuleId::from("B");
        let dead = dep.placement.modules[&a].primary_device;

        cloud
            .datacenter_mut()
            .set_failure_plan(FailurePlan::from_events(vec![crash(5, dead)]));
        let report = cloud.advance(&mut dep, 10);
        // The scheduler may have co-placed both tasks on the crashed
        // device, in which case both heal; either way the loop must
        // converge with the domains on disjoint hardware.
        assert!(report.detected.contains(&a));
        assert!(dep.health.is_converged());
        let a_dev = dep.placement.modules[&a].primary_device;
        let b_devs = &dep.placement.modules[&b].replica_devices;
        assert!(
            !b_devs.contains(&a_dev),
            "east must not heal onto west's hardware ({a_dev})"
        );
        cloud.teardown(&mut dep);
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let cfg = HealConfig::default();
        let id = ModuleId::from("T");
        let d1 = backoff_delay_us(&cfg, &id, 1);
        assert_eq!(d1, backoff_delay_us(&cfg, &id, 1), "same seed, same delay");
        // Raw doubling with jitter < raw/4 + 1 keeps attempts ordered.
        for attempt in 1..12u32 {
            let d = backoff_delay_us(&cfg, &id, attempt);
            let raw = (cfg.base_backoff_us << (attempt - 1).min(32)).min(cfg.max_backoff_us);
            assert!(d >= raw && d <= raw + raw / 4 + 1, "attempt {attempt}: {d}");
        }
        // Different modules jitter differently (herd avoidance).
        let other = ModuleId::from("U");
        assert_ne!(
            backoff_delay_us(&cfg, &id, 3),
            backoff_delay_us(&cfg, &other, 3)
        );
    }

    #[test]
    fn log_compaction_bounds_memory_when_all_modules_checkpoint() {
        let a = ModuleId::from("A");
        let b = ModuleId::from("B");
        let mut model = RecoveryModel::new();
        model.seed_workload(&a, 100, Some(10));
        // A's last checkpoint covers its whole stream: nothing retained.
        assert_eq!(model.log_len(), 0);
        model.seed_workload(&b, 60, Some(20));
        // The truncation point is the *oldest* checkpoint (A's), so B's
        // later stream is retained; memory stays bounded by the suffix
        // past the oldest checkpoint rather than growing with history.
        assert_eq!(model.log_len(), 60);
        // Recovery is unaffected by the dropped prefix.
        for id in [&a, &b] {
            let out = model
                .recover_module(id, RecoveryStrategy::FromCheckpoint)
                .unwrap();
            assert_eq!(out.strategy, RecoveryStrategy::FromCheckpoint);
            assert_eq!(out.replayed, 0, "fully checkpointed: no suffix");
            assert_eq!(model.recovered_state(id), model.expected_state(id));
        }
    }

    #[test]
    fn uncheckpointed_module_pins_the_full_log() {
        let a = ModuleId::from("A");
        let b = ModuleId::from("B");
        let mut model = RecoveryModel::new();
        model.seed_workload(&a, 50, None); // re-execution: replays seq 0
        model.seed_workload(&b, 50, Some(10));
        assert_eq!(model.compact(), 0, "A's history must be kept");
        assert_eq!(model.log_len(), 100);
        let out = model
            .recover_module(&a, RecoveryStrategy::Reexecute)
            .unwrap();
        assert_eq!(out.replayed, 50);
        assert_eq!(model.recovered_state(&a), model.expected_state(&a));
    }

    #[test]
    fn parallel_runtime_recovers_identically_to_the_default() {
        // The same workload seeded through the work-stealing executor
        // must checkpoint, compact and recover to the same state as the
        // single-threaded default — the log contract behind
        // `RecoveryModel::with_runtime`.
        let a = ModuleId::from("A");
        let b = ModuleId::from("B");
        let mut serial = RecoveryModel::new();
        let mut par = RecoveryModel::parallel(4);
        for model in [&mut serial, &mut par] {
            model.seed_workload(&a, 37, Some(10));
            model.seed_workload(&b, 25, None);
        }
        assert_eq!(par.log_len(), serial.log_len());
        for id in [&a, &b] {
            assert_eq!(par.expected_state(id), serial.expected_state(id));
            let strategy = if id == &a {
                RecoveryStrategy::FromCheckpoint
            } else {
                RecoveryStrategy::Reexecute
            };
            let out_s = serial.recover_module(id, strategy).unwrap();
            let out_p = par.recover_module(id, strategy).unwrap();
            assert_eq!(out_p, out_s, "recovery outcome diverged for {id}");
            assert_eq!(par.recovered_state(id), serial.recovered_state(id));
            assert_eq!(par.recovered_state(id), par.expected_state(id));
        }
    }

    #[test]
    fn compaction_keeps_replay_suffix_past_last_checkpoint() {
        let a = ModuleId::from("A");
        let mut model = RecoveryModel::new();
        model.seed_workload(&a, 25, Some(10));
        // Checkpoints at messages 10 and 20: only the 5-message suffix
        // past the newest checkpoint survives compaction.
        assert_eq!(model.log_len(), 5);
        let out = model
            .recover_module(&a, RecoveryStrategy::FromCheckpoint)
            .unwrap();
        assert_eq!(out.replayed, 5);
        assert_eq!(model.recovered_state(&a), model.expected_state(&a));
    }

    #[test]
    fn heal_telemetry_counters_and_mttr_are_exported() {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let obs = cloud.enable_telemetry();
        let mut dep = cloud.submit(&one_task_app(None)).unwrap();
        dep.recovery.seed_app(&one_task_app(None), 8);
        let id = ModuleId::from("T");
        let dead = dep.placement.modules[&id].primary_device;
        cloud
            .datacenter_mut()
            .set_failure_plan(FailurePlan::from_events(vec![crash(5, dead)]));
        cloud.advance(&mut dep, 10);

        let snap = obs.snapshot();
        let json = snap.to_json();
        assert!(json.contains("heal.repairs"));
        assert!(json.contains("heal.mttr_us"));
        assert!(json.contains("heal.evictions"));
        assert!(json.contains("heal.replayed_messages"));
        assert_eq!(obs.counter("heal.repairs", &Labels::none()), 1);
    }

    #[test]
    fn overdue_account_degrades_suspends_and_reinstates_on_payment() {
        use udc_economics::{PlanSpec, QuotaGate};

        let mut cloud = UdcCloud::new(CloudConfig::default());
        let obs = cloud.enable_telemetry();
        let plan = PlanSpec {
            name: "starter".to_string(),
            window_us: u64::MAX,
            credit_per_window: 0,
            quota: udc_spec::ResourceVector::new(),
            degrade_after_us: 10,
            suspend_after_us: 20,
        };
        let mut gate = QuotaGate::new();
        gate.open_account("tenant", plan, 0);
        let gate = udc_economics::shared(gate);
        cloud.attach_economics(gate.clone());

        let mut dep = cloud.submit(&one_task_app(None)).unwrap();
        let id = ModuleId::from("T");

        // Run the tenant into debt out-of-band, then let the lifecycle
        // escalate: overdue at t=5, degraded at t=15, suspended at t=30.
        gate.lock()
            .unwrap()
            .account_mut("tenant")
            .unwrap()
            .charge(0, 500, None, "overage");

        let r1 = cloud.advance(&mut dep, 5);
        assert!(r1.suspended.is_empty(), "overdue alone must not evict");
        assert!(dep.environments[&id].is_running());

        let r2 = cloud.advance(&mut dep, 10);
        assert!(r2.suspended.is_empty(), "degrade is advisory");
        assert!(dep.environments[&id].is_running());
        assert_eq!(obs.counter("econ.degradations", &Labels::none()), 1);

        let r3 = cloud.advance(&mut dep, 15);
        assert_eq!(r3.suspended, vec![id.clone()], "past grace: evicted");
        assert!(!dep.environments[&id].is_running());
        assert!(!dep.health.is_converged());
        assert!(dep.econ_suspended.contains(&id));
        {
            let g = gate.lock().unwrap();
            let acct = g.account("tenant").unwrap();
            assert!(acct.is_suspended());
            // The eviction itself is ledger-auditable.
            assert!(acct
                .ledger
                .entries()
                .iter()
                .any(|e| e.module.as_deref() == Some("T") && e.memo == "suspension eviction"));
        }

        // A device-repair tick must NOT re-heal the suspended module.
        cloud
            .datacenter_mut()
            .set_failure_plan(FailurePlan::from_events(vec![
                crash(32, DeviceId(0)),
                repair(33, DeviceId(0)),
            ]));
        let r4 = cloud.advance(&mut dep, 5);
        assert!(r4.repaired.is_empty(), "payment, not hardware, reinstates");
        assert!(!dep.health.is_converged());

        // Payment clears the balance; the next settle reinstates and
        // the same advance re-places the module.
        gate.lock()
            .unwrap()
            .account_mut("tenant")
            .unwrap()
            .pay(35, 1_000);
        let r5 = cloud.advance(&mut dep, 5);
        assert_eq!(r5.reinstated, vec![id.clone()]);
        assert_eq!(r5.repaired.len(), 1, "re-placed in the same interval");
        assert!(dep.health.is_converged());
        assert!(dep.environments[&id].is_running());
        assert!(dep.econ_suspended.is_empty());
        assert!(cloud.verify_deployment(&dep).all_fulfilled());

        // The audit trail explains the whole lifecycle.
        let decisions = obs.decisions();
        let stages: Vec<&str> = decisions.iter().map(|d| d.stage.as_str()).collect();
        assert!(stages.contains(&"econ.degrade"));
        assert!(stages.contains(&"econ.suspend"));
        assert!(stages.contains(&"econ.reinstate"));
        assert!(decisions
            .iter()
            .filter(|d| d.stage == "econ.suspend")
            .all(|d| d.reason == ReasonCode::Suspended && !d.accepted));
        assert_eq!(obs.counter("econ.suspensions", &Labels::none()), 1);
        assert_eq!(obs.counter("econ.reinstatements", &Labels::none()), 1);

        cloud.teardown(&mut dep);
        // Teardown released the admitted footprint back to the gate.
        assert!(gate
            .lock()
            .unwrap()
            .account("tenant")
            .unwrap()
            .in_use
            .is_zero());
    }
}
