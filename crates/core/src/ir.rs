//! The uniform intermediate representation (§3.1).
//!
//! "We will then extend their compilers to compile them into a uniform
//! intermediate representation (in units of IR modules) for resource
//! allocation and execution. Our IR is defined as high-level modules and
//! their relationships, not low-level code instructions."

use serde::{Deserialize, Serialize};
use udc_crypto::sha256;
use udc_spec::{AppSpec, ConflictPolicy, ModuleId, ModuleSpec, SpecResult};

/// One IR module: the spec module plus a content identity used for
/// attestation measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleIr {
    /// The module's declarative specification (aspects included).
    pub spec: ModuleSpec,
    /// Code/content identity: a digest over the module's canonical
    /// serialization. Real deployments hash the module binary; the
    /// simulation hashes the spec, which has the property the
    /// attestation flow needs — it changes whenever the module or its
    /// aspects change.
    pub identity: [u8; 32],
}

impl ModuleIr {
    /// Compiles one spec module to IR.
    pub fn compile(spec: &ModuleSpec) -> Self {
        let canonical = serde_json::to_vec(spec).expect("module specs serialize infallibly");
        Self {
            spec: spec.clone(),
            identity: sha256(&canonical),
        }
    }

    /// Short hex identity (first 8 bytes) for measurement-log events.
    pub fn identity_hex(&self) -> String {
        self.identity[..8]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect()
    }
}

/// The IR of a whole application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppIr {
    /// The source app — post conflict resolution, validated.
    pub app: AppSpec,
    /// IR modules in id order.
    pub modules: Vec<ModuleIr>,
}

impl AppIr {
    /// Compiles an application: resolves conflicts with `policy`,
    /// validates, and derives module identities.
    pub fn compile(app: &AppSpec, policy: ConflictPolicy) -> SpecResult<Self> {
        let resolved = udc_spec::resolve(app, policy)?;
        resolved.validate()?;
        let modules = resolved.iter_modules().map(ModuleIr::compile).collect();
        Ok(Self {
            app: resolved,
            modules,
        })
    }

    /// Looks up an IR module by id.
    pub fn module(&self, id: &ModuleId) -> Option<&ModuleIr> {
        self.modules.iter().find(|m| &m.spec.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udc_spec::{ConsistencyLevel, DataSpec, TaskSpec};

    fn app() -> AppSpec {
        let mut a = AppSpec::new("t");
        a.add_task(TaskSpec::new("A1").with_work(10));
        a.add_data(DataSpec::new("S1").with_bytes(1024));
        a
    }

    #[test]
    fn compiles_and_indexes() {
        let ir = AppIr::compile(&app(), ConflictPolicy::StrictestWins).unwrap();
        assert_eq!(ir.modules.len(), 2);
        assert!(ir.module(&"A1".into()).is_some());
        assert!(ir.module(&"ghost".into()).is_none());
    }

    #[test]
    fn identity_changes_with_aspects() {
        let base = app();
        let ir1 = AppIr::compile(&base, ConflictPolicy::StrictestWins).unwrap();
        let mut changed = base.clone();
        changed.add_task(TaskSpec::new("A1").with_work(20));
        let ir2 = AppIr::compile(&changed, ConflictPolicy::StrictestWins).unwrap();
        let id1 = ir1.module(&"A1".into()).unwrap().identity;
        let id2 = ir2.module(&"A1".into()).unwrap().identity;
        assert_ne!(id1, id2, "changing the module must change its identity");
    }

    #[test]
    fn identity_deterministic() {
        let ir1 = AppIr::compile(&app(), ConflictPolicy::StrictestWins).unwrap();
        let ir2 = AppIr::compile(&app(), ConflictPolicy::StrictestWins).unwrap();
        assert_eq!(ir1, ir2);
    }

    #[test]
    fn conflicts_resolved_before_compile() {
        let mut a = AppSpec::new("c");
        a.add_task(TaskSpec::new("A"));
        a.add_task(TaskSpec::new("B"));
        a.add_data(DataSpec::new("S"));
        a.add_access_with("A", "S", Some(ConsistencyLevel::Sequential), None)
            .unwrap();
        a.add_access_with("B", "S", Some(ConsistencyLevel::Release), None)
            .unwrap();
        let ir = AppIr::compile(&a, ConflictPolicy::StrictestWins).unwrap();
        assert_eq!(
            ir.module(&"S".into()).unwrap().spec.dist.consistency,
            Some(ConsistencyLevel::Sequential)
        );
        assert!(AppIr::compile(&a, ConflictPolicy::Error).is_err());
    }

    #[test]
    fn invalid_app_rejected() {
        let a = AppSpec::new("empty");
        assert!(AppIr::compile(&a, ConflictPolicy::StrictestWins).is_err());
    }

    #[test]
    fn identity_hex_is_short_and_stable() {
        let ir = AppIr::compile(&app(), ConflictPolicy::StrictestWins).unwrap();
        let hex = ir.module(&"A1".into()).unwrap().identity_hex();
        assert_eq!(hex.len(), 16);
    }
}
