//! Offline stand-in for the `crossbeam` crate: the `channel` module's
//! unbounded MPMC channel, implemented over `Mutex` + `Condvar`. The
//! lock-free performance of the real crate is not needed by the thread
//! pool in `udc-actor`, which sends coarse-grained jobs.

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value; fails when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking receive; None when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for i in 1..=100u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }
    }
}
