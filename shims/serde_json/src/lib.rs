//! Offline stand-in for `serde_json`: writes and parses JSON text
//! against the shim `serde` crate's [`Value`] data model.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::value::{Number, Value};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes into any [`Deserialize`] type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected character {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(e.to_string()))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        let n = if float {
            Number::F(text.parse::<f64>().map_err(|e| Error(e.to_string()))?)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::U(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::I(i)
        } else {
            Number::F(text.parse::<f64>().map_err(|e| Error(e.to_string()))?)
        };
        Ok(Value::Number(n))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("expected , or ] , found {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(Error(format!("expected , or }} , found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":null,"e":true}}"#;
        let v: Value = from_str(text).unwrap();
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
        assert!(v.get("a").is_some());
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn pretty_output_parses() {
        let v: Value = from_str(r#"{"k":[1,2],"empty":{},"s":"hi"}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
    }
}
