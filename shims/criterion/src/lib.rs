//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's bench targets use:
//! `Criterion::bench_function`, `benchmark_group` with throughput and
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! calibrated wall-clock loop (geometric warm-up until the batch takes
//! long enough to time, then a fixed number of measured batches); it
//! reports median ns/iter and derived throughput, with none of the
//! statistical machinery of the real crate.
//!
//! Two environment knobs support machine consumption in CI:
//!
//! - `UDC_BENCH_QUICK` (any value): shrinks the warm-up target and the
//!   measured batch count so a full bench binary completes in seconds —
//!   noisier numbers, same code paths;
//! - `UDC_BENCH_JSON=<path>`: on exit ([`finalize`], called by
//!   `criterion_main!`), every `(name, ns_per_iter)` pair measured by
//!   this process is written to `<path>` as a small JSON document for
//!   downstream threshold checks.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_TARGET: Duration = Duration::from_millis(10);
const MEASURE_BATCHES: usize = 7;
const QUICK_WARMUP_TARGET: Duration = Duration::from_micros(500);
const QUICK_MEASURE_BATCHES: usize = 3;

/// Every result this process has measured, in execution order.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn quick_mode() -> bool {
    std::env::var_os("UDC_BENCH_QUICK").is_some()
}

fn record(name: &str, ns_per_iter: f64) {
    RESULTS
        .lock()
        .expect("bench sink poisoned")
        .push((name.to_string(), ns_per_iter));
}

/// Records an arbitrary named value into the bench JSON alongside the
/// timing results (shim extension; no real-criterion equivalent).
///
/// Threshold checks sometimes need a fact about the measuring machine
/// next to the measurements — e.g. a parallel-speedup floor is only
/// meaningful when the artifact says how many CPUs the run actually
/// had. Entries share the `{name, ns_per_iter}` schema so downstream
/// readers need no second parser; use a distinguishing prefix such as
/// `env/` for non-timing entries.
pub fn record_value(name: &str, value: f64) {
    record(name, value);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the collected results as the bench JSON document.
fn render_results(results: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {ns:.3}}}",
            json_escape(name)
        ));
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the machine-readable results to `$UDC_BENCH_JSON`, if set.
/// Called automatically by `criterion_main!` after all groups run.
pub fn finalize() {
    let Some(path) = std::env::var_os("UDC_BENCH_JSON") else {
        return;
    };
    let path = std::path::PathBuf::from(path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let results = RESULTS.lock().expect("bench sink poisoned");
    std::fs::write(&path, render_results(&results))
        .unwrap_or_else(|e| panic!("writing bench JSON to {}: {e}", path.display()));
    eprintln!("bench JSON: {}", path.display());
}

/// Benchmark driver; collects and prints results.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Opens a group whose benchmarks are *deferred* and measured with
    /// interleaved batches: registration stores the closures, and
    /// [`InterleavedGroup::finish`] runs one timed batch of each
    /// benchmark per round (with a rotating start) until every benchmark
    /// has its full sample count. Slow machine drift (thermal, noisy
    /// neighbours) then lands evenly on every benchmark in the group, so
    /// within-group ratios — speedups, overhead bounds — stay honest.
    ///
    /// Shim extension (no real-criterion equivalent): closures must
    /// outlive the group, so benchmarks that need per-variant state
    /// should move it into the closure.
    pub fn interleaved_group(&mut self, name: &str) -> InterleavedGroup<'_> {
        InterleavedGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
            benches: Vec::new(),
        }
    }
}

/// A deferred benchmark group measured with interleaved batches; see
/// [`Criterion::interleaved_group`].
pub struct InterleavedGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    #[allow(clippy::type_complexity)]
    benches: Vec<(String, Box<dyn FnMut(&mut Bencher) + 'a>)>,
}

impl<'a> InterleavedGroup<'a> {
    /// Declares the volume of work per iteration, enabling derived
    /// throughput in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Registers one benchmark; it runs when the group finishes.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) + 'a,
    {
        self.benches
            .push((format!("{}/{}", self.name, id), Box::new(f)));
        self
    }

    /// Runs every registered benchmark: a warm-up pass sizes each
    /// benchmark's batch, then measurement rounds run one batch of each
    /// benchmark with a rotating start order.
    pub fn finish(mut self) {
        // Quick mode shrinks the warm-up but keeps the full round
        // count: interleaved groups exist to make within-group *ratios*
        // trustworthy, and a median over 3 rounds is one noisy sample
        // away from a spurious floor violation in CI.
        let warmup_target = if quick_mode() {
            QUICK_WARMUP_TARGET
        } else {
            WARMUP_TARGET
        };
        let measure_batches = MEASURE_BATCHES;
        let n = self.benches.len();
        let mut batches = vec![1u64; n];
        for (i, (_, f)) in self.benches.iter_mut().enumerate() {
            let mut b = Bencher {
                mode: Mode::Warmup {
                    target: warmup_target,
                },
                ..Bencher::default()
            };
            f(&mut b);
            batches[i] = b.batch;
        }
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(measure_batches); n];
        for round in 0..measure_batches {
            for k in 0..n {
                let i = (round + k) % n;
                let mut b = Bencher {
                    mode: Mode::Batch { batch: batches[i] },
                    ..Bencher::default()
                };
                (self.benches[i].1)(&mut b);
                samples[i].push(b.sample_ns);
            }
        }
        for (i, (name, _)) in self.benches.iter().enumerate() {
            // Minimum, not median: timing noise is one-sided (a sample
            // can only be inflated by interference, never deflated), so
            // the fastest round is the least-contaminated estimate of
            // the true cost — and the estimator under which
            // within-group ratios are stable on a noisy machine.
            let best = samples[i].iter().copied().fold(f64::INFINITY, f64::min);
            let reporter = Bencher {
                ns_per_iter: best,
                ..Bencher::default()
            };
            reporter.report(name, self.throughput);
        }
    }
}

/// A related set of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the volume of work per iteration, enabling derived
    /// throughput in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// What a [`Bencher::iter`] call should do: the classic self-contained
/// warm-up-then-measure loop, or one phase of an interleaved group run.
#[derive(Default)]
enum Mode {
    /// Warm up, then measure; the default for eagerly-run benchmarks.
    #[default]
    Full,
    /// Geometric warm-up only: find the batch size, record no sample.
    Warmup { target: Duration },
    /// Time exactly one batch of the given size.
    Batch { batch: u64 },
}

/// Timing loop handed to each benchmark closure.
#[derive(Default)]
pub struct Bencher {
    mode: Mode,
    /// Batch size chosen by a warm-up pass.
    batch: u64,
    /// ns/iter of the single timed batch (interleaved mode).
    sample_ns: f64,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times the routine: geometric warm-up to find a batch size that
    /// runs for at least [`WARMUP_TARGET`], then the median of
    /// [`MEASURE_BATCHES`] timed batches. (In an interleaved group the
    /// two phases run separately, driven by [`InterleavedGroup`].)
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let (warmup_target, measure_batches) = if quick_mode() {
            (QUICK_WARMUP_TARGET, QUICK_MEASURE_BATCHES)
        } else {
            (WARMUP_TARGET, MEASURE_BATCHES)
        };
        match self.mode {
            Mode::Full => {
                let batch = Self::warm_up(warmup_target, &mut routine);
                let mut samples: Vec<f64> = (0..measure_batches)
                    .map(|_| Self::time_batch(batch, &mut routine))
                    .collect();
                samples.sort_by(|a, b| a.total_cmp(b));
                self.ns_per_iter = samples[samples.len() / 2];
            }
            Mode::Warmup { target } => {
                self.batch = Self::warm_up(target, &mut routine);
            }
            Mode::Batch { batch } => {
                self.sample_ns = Self::time_batch(batch, &mut routine);
            }
        }
    }

    fn warm_up<O, F: FnMut() -> O>(target: Duration, routine: &mut F) -> u64 {
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        batch
    }

    fn time_batch<O, F: FnMut() -> O>(batch: u64, routine: &mut F) -> f64 {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        start.elapsed().as_nanos() as f64 / batch as f64
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        record(name, self.ns_per_iter);
        let extra = match throughput {
            Some(Throughput::Bytes(n)) if self.ns_per_iter > 0.0 => {
                let gib = n as f64 / self.ns_per_iter * 1e9 / (1u64 << 30) as f64;
                format!("  thrpt: {gib:>10.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if self.ns_per_iter > 0.0 => {
                let meps = n as f64 / self.ns_per_iter * 1e9 / 1e6;
                format!("  thrpt: {meps:>10.3} Melem/s")
            }
            _ => String::new(),
        };
        println!("{name:<48} time: {:>12.1} ns/iter{extra}", self.ns_per_iter);
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_well_formed() {
        let results = vec![
            ("group/simple".to_string(), 12.3456),
            ("needs \"escaping\"\\n".to_string(), 0.5),
        ];
        let json = render_results(&results);
        assert!(json.contains("\"name\": \"group/simple\""));
        assert!(json.contains("\"ns_per_iter\": 12.346"));
        assert!(json.contains("needs \\\"escaping\\\"\\\\n"));
        // Exactly one separator comma between the two entries.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn empty_results_render_an_empty_list() {
        assert_eq!(render_results(&[]), "{\n  \"benches\": [\n  ]\n}\n");
    }

    #[test]
    fn recorded_values_land_in_the_results_sink() {
        record_value("env/cpus", 8.0);
        let results = RESULTS.lock().expect("bench sink poisoned");
        assert!(results
            .iter()
            .any(|(name, v)| name == "env/cpus" && *v == 8.0));
    }
}
