//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the shim `serde` crate's `Value` data model, parsing the item
//! token stream by hand (no `syn`/`quote` — those cannot be fetched in
//! this build environment). Supports the shapes and attributes used in
//! this workspace:
//!
//! - structs with named fields, tuple/newtype structs, unit structs;
//! - enums with unit, newtype, tuple, and struct variants;
//! - plain type parameters (`struct Wrapper<T> { .. }`);
//! - `#[serde(transparent)]`, `#[serde(rename_all = "snake_case")]`,
//!   `#[serde(default)]`, `#[serde(default = "path")]`, and
//!   `#[serde(skip_serializing_if = "path")]`.

use proc_macro::TokenStream;

mod parse;
use parse::{Body, Field, Input, VariantShape};

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn impl_header(item: &Input, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let args = item.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{args}>",
            params.join(", "),
            item.name
        )
    }
}

fn rename(item: &Input, ident: &str) -> String {
    match item.rename_all.as_deref() {
        Some("snake_case") => to_snake_case(ident),
        Some("lowercase") => ident.to_lowercase(),
        _ => ident.to_string(),
    }
}

fn to_snake_case(ident: &str) -> String {
    let mut out = String::new();
    for (i, c) in ident.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn gen_serialize(item: &Input) -> String {
    let body = match &item.body {
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let parts: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", parts.join(", "))
        }
        Body::NamedStruct(fields) => {
            if item.transparent && fields.len() == 1 {
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                let mut s = String::from(
                    "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    let push = format!(
                        "entries.push((\"{key}\".to_string(), ::serde::Serialize::to_value(&self.{name})));",
                        key = rename_field(item, &f.name),
                        name = f.name
                    );
                    match &f.skip_if {
                        Some(path) => s.push_str(&format!(
                            "if !({path})(&self.{name}) {{ {push} }}\n",
                            name = f.name
                        )),
                        None => {
                            s.push_str(&push);
                            s.push('\n');
                        }
                    }
                }
                s.push_str("::serde::Value::Object(entries)");
                s
            }
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = rename(item, &v.name);
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{}::{} => ::serde::Value::String(\"{key}\".to_string()),\n",
                        item.name, v.name
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{}::{}(__v0) => ::serde::Value::Object(vec![(\"{key}\".to_string(), \
                         ::serde::Serialize::to_value(__v0))]),\n",
                        item.name, v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{}::{}({bl}) => ::serde::Value::Object(vec![(\"{key}\".to_string(), \
                             ::serde::Value::Array(vec![{vl}]))]),\n",
                            item.name,
                            v.name,
                            bl = binds.join(", "),
                            vl = vals.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{key}\".to_string(), ::serde::Serialize::to_value({name}))",
                                    key = rename_field(item, &f.name),
                                    name = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{}::{} {{ {bl} }} => ::serde::Value::Object(vec![(\"{key}\".to_string(), \
                             ::serde::Value::Object(vec![{el}]))]),\n",
                            item.name,
                            v.name,
                            bl = binds.join(", "),
                            el = entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{header} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n",
        header = impl_header(item, "Serialize")
    )
}

fn rename_field(item: &Input, name: &str) -> String {
    // Field renames only apply via container rename_all, which in this
    // workspace is used on enums (variant names); struct fields keep
    // their Rust names, matching serde's default.
    let _ = item;
    name.to_string()
}

fn field_expr(struct_name: &str, f: &Field, source: &str) -> String {
    let missing = match &f.default {
        None => format!(
            "return ::std::result::Result::Err(::serde::de::Error::msg(\
             \"missing field `{}` in {struct_name}\"))",
            f.name
        ),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{name}: match ::serde::de::get({source}, \"{key}\") {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
         ::std::option::Option::None => {missing},\n\
         }}",
        name = f.name,
        key = f.name
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct(n) => {
            let parts: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Array(__arr) if __arr.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::msg(format!(\
                 \"expected array of length {n} for {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                parts.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            if item.transparent && fields.len() == 1 {
                format!(
                    "::std::result::Result::Ok({name} {{ {}: \
                     ::serde::Deserialize::from_value(__v)? }})",
                    fields[0].name
                )
            } else {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| field_expr(name, f, "__entries"))
                    .collect();
                format!(
                    "let __entries = ::serde::de::as_object(__v, \"{name}\")?;\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join(",\n")
                )
            }
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let key = rename(item, &v.name);
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{}),\n",
                        v.name
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{}(\
                         ::serde::Deserialize::from_value(__val)?)),\n",
                        v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let parts: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{key}\" => match __val {{\n\
                             ::serde::Value::Array(__arr) if __arr.len() == {n} => \
                             ::std::result::Result::Ok({name}::{}({})),\n\
                             _ => ::std::result::Result::Err(::serde::de::Error::msg(\
                             \"expected array for variant `{key}`\")),\n\
                             }},\n",
                            v.name,
                            parts.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| field_expr(name, f, "__ventries"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{key}\" => {{\n\
                             let __ventries = ::serde::de::as_object(__val, \"{name}::{}\")?;\n\
                             ::std::result::Result::Ok({name}::{} {{\n{}\n}})\n\
                             }},\n",
                            v.name,
                            v.name,
                            inits.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::msg(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __val) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::msg(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::de::Error::msg(format!(\
                 \"expected string or single-key object for {name}, found {{}}\", \
                 __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "{header} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n",
        header = impl_header(item, "Deserialize")
    )
}
