//! Hand-rolled parser for the derive input token stream.
//!
//! Recognizes exactly the item grammar this workspace uses; anything
//! outside it panics with a message naming the unsupported construct so
//! the build fails loudly rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A field of a struct or struct variant.
pub struct Field {
    pub name: String,
    /// None = required; Some(None) = `#[serde(default)]`;
    /// Some(Some(path)) = `#[serde(default = "path")]`.
    pub default: Option<Option<String>>,
    /// `#[serde(skip_serializing_if = "path")]`.
    pub skip_if: Option<String>,
}

/// The shape of one enum variant.
pub enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// One enum variant.
pub struct Variant {
    pub name: String,
    pub shape: VariantShape,
}

/// The body of the item.
pub enum Body {
    Unit,
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

/// A parsed derive input.
pub struct Input {
    pub name: String,
    pub generics: Vec<String>,
    pub rename_all: Option<String>,
    pub transparent: bool,
    pub body: Body,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Self {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected identifier, found {other:?}"),
        }
    }
}

/// Serde attributes collected off an attribute list.
#[derive(Default)]
struct SerdeAttrs {
    rename_all: Option<String>,
    transparent: bool,
    default: Option<Option<String>>,
    skip_if: Option<String>,
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parses attributes at the cursor (`#[...]`*), accumulating serde ones.
fn parse_attrs(c: &mut Cursor) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while c.at_punct('#') {
        c.next();
        let group = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde shim derive: expected [...] after #, found {other:?}"),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let Some(TokenTree::Ident(head)) = inner.first() else {
            continue;
        };
        if head.to_string() != "serde" {
            continue; // doc comments and other attributes
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        let mut ac = Cursor::new(args.stream());
        while ac.peek().is_some() {
            let key = ac.expect_ident();
            let mut value: Option<String> = None;
            if ac.at_punct('=') {
                ac.next();
                match ac.next() {
                    Some(TokenTree::Literal(l)) => value = Some(strip_quotes(&l.to_string())),
                    other => panic!("serde shim derive: expected literal, found {other:?}"),
                }
            }
            match key.as_str() {
                "rename_all" => attrs.rename_all = value,
                "transparent" => attrs.transparent = true,
                "default" => attrs.default = Some(value),
                "skip_serializing_if" => attrs.skip_if = value,
                other => panic!("serde shim derive: unsupported serde attribute `{other}`"),
            }
            if ac.at_punct(',') {
                ac.next();
            }
        }
    }
    attrs
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(c: &mut Cursor) {
    if c.at_ident("pub") {
        c.next();
        if matches!(c.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            c.next();
        }
    }
}

/// Parses `<A, B, ...>` generics, returning plain type-parameter names.
/// Bounds, lifetimes, and const params are not used by the derived types
/// in this workspace and are rejected.
fn parse_generics(c: &mut Cursor) -> Vec<String> {
    let mut params = Vec::new();
    if !c.at_punct('<') {
        return params;
    }
    c.next();
    loop {
        if c.at_punct('>') {
            c.next();
            break;
        }
        if c.at_punct(',') {
            c.next();
            continue;
        }
        match c.next() {
            Some(TokenTree::Ident(i)) => params.push(i.to_string()),
            other => panic!("serde shim derive: unsupported generic parameter: {other:?}"),
        }
    }
    params
}

/// Skips a type at the cursor: consumes tokens until a top-level `,` or
/// the end, tracking `<`/`>` nesting.
fn skip_type(c: &mut Cursor) {
    let mut angle = 0i32;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        c.next();
    }
}

/// Parses `name: Type` named fields from a brace group's stream.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = parse_attrs(&mut c);
        if c.peek().is_none() {
            break;
        }
        skip_vis(&mut c);
        let name = c.expect_ident();
        if !c.at_punct(':') {
            panic!("serde shim derive: expected `:` after field `{name}`");
        }
        c.next();
        skip_type(&mut c);
        if c.at_punct(',') {
            c.next();
        }
        fields.push(Field {
            name,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        parse_attrs(&mut c);
        if c.peek().is_none() {
            break;
        }
        skip_vis(&mut c);
        skip_type(&mut c);
        count += 1;
        if c.at_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        parse_attrs(&mut c);
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        if c.at_punct('=') {
            c.next();
            while c.peek().is_some() && !c.at_punct(',') {
                c.next();
            }
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

/// Parses a full derive input.
pub fn parse(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    let attrs = parse_attrs(&mut c);
    skip_vis(&mut c);
    let kw = c.expect_ident();
    let name = c.expect_ident();
    let generics = parse_generics(&mut c);
    let body = match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("serde shim derive: unsupported struct body: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Input {
        name,
        generics,
        rename_all: attrs.rename_all,
        transparent: attrs.transparent,
        body,
    }
}
