//! One-stop import mirroring `proptest::prelude::*`.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Namespace mirror: `prop::collection::vec`, `prop::sample::select`,
/// `prop::array::uniform32`, …
pub mod prop {
    pub use crate::{array, collection, sample};
}
