//! Sampling from explicit option lists.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy choosing uniformly from a fixed list.
pub struct Select<T> {
    options: Vec<T>,
}

/// Uniform choice among `options`; panics when empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
