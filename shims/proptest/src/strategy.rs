//! The `Strategy` trait and core combinators.

use rand::rngs::StdRng;
use rand::Rng;

use crate::test_runner::TestRunner;

/// A recipe for sampling random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Applies a function to every sampled value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Samples a value wrapped in a [`ValueTree`] (shrink-free).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampleTree<Self::Value>, String> {
        Ok(SampleTree {
            value: self.sample(runner.rng()),
        })
    }
}

/// A sampled value; the real crate shrinks through this, the shim
/// simply holds the current sample.
pub trait ValueTree {
    /// The type of value held.
    type Value;

    /// The current value.
    fn current(&self) -> Self::Value;
}

/// The shim's only [`ValueTree`]: a single fixed sample.
pub struct SampleTree<T> {
    value: T,
}

impl<T: Clone> ValueTree for SampleTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.value.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + Copy + PartialOrd> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Mini-regex string strategy; see [`crate::string`] for the grammar.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

/// A type-erased case inside a [`Union`].
pub type UnionCase<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    cases: Vec<UnionCase<T>>,
}

impl<T> Union<T> {
    /// Wraps the case list; panics when empty.
    pub fn new(cases: Vec<UnionCase<T>>) -> Self {
        assert!(!cases.is_empty(), "prop_oneof! needs at least one case");
        Self { cases }
    }

    /// Erases one strategy into a sampling closure.
    pub fn case<S>(strat: S) -> UnionCase<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| strat.sample(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.cases.len());
        (self.cases[idx])(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
