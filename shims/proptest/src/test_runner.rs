//! Test configuration and the case runner state.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-block configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

/// Holds the RNG that drives sampling. Always deterministic in the
/// shim: the same binary reruns the same cases.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    const SEED: u64 = 0x5EED_0F0D_15C0;

    /// Runner for the given config.
    pub fn new(_config: ProptestConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(Self::SEED),
        }
    }

    /// Runner with a fixed, documented seed.
    pub fn deterministic() -> Self {
        Self::new(ProptestConfig::default())
    }

    /// The sampling RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
