//! A tiny regex-shaped generator covering the patterns used in-tree:
//! literal characters, character classes like `[a-z0-9]`, the `\PC`
//! printable class, and `{m}` / `{m,n}` repetition.

use rand::rngs::StdRng;
use rand::Rng;

struct Atom {
    /// Inclusive character ranges to draw from.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Samples a string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..atom.max + 1);
        let total: u32 = atom
            .ranges
            .iter()
            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
            .sum();
        for _ in 0..count {
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in &atom.ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick).expect("valid char range"));
                    break;
                }
                pick -= span;
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((chars[i], chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1;
                ranges
            }
            '\\' => {
                // Only the printable-character class `\PC` is supported;
                // any other escape stands for the escaped literal.
                if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' {
                    i += 3;
                    vec![(' ', '~')]
                } else {
                    assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                    let c = chars[i + 1];
                    i += 2;
                    vec![(c, c)]
                }
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repeat")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("repeat lower bound"),
                    hi.parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_with_repeat() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = sample_pattern("[a-z][a-z0-9]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_class() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let s = sample_pattern("\\PC{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
