//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: `proptest!` test blocks with
//! optional `#![proptest_config(..)]`, strategies for ranges, tuples (up
//! to 8), `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, `prop::array::uniform{12,32}`, `any::<T>()`,
//! mini-regex string strategies, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are sampled from a fixed deterministic seed; there is
//! no shrinking — a failure reports the offending case number instead.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Defines property tests. Each function body runs `config.cases` times
/// with freshly sampled arguments; `prop_assert*` failures abort the
/// test with the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config.clone());
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::sample(&$strat, runner.rng());)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {case}: {msg}");
                    }
                }
            }
        }
    )*};
}

/// Chooses uniformly between the given strategies (all yielding the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::case($strat)),+])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: {:?} == {:?}", format!($($fmt)+), l, r);
    }};
}

/// Skips the current case (without failing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
