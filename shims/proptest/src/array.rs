//! Fixed-size array strategies.

use rand::rngs::StdRng;

use crate::strategy::Strategy;

/// Strategy producing `[S::Value; N]` with independently drawn elements.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

/// 12-element arrays of `element` samples.
pub fn uniform12<S: Strategy>(element: S) -> UniformArray<S, 12> {
    UniformArray { element }
}

/// 32-element arrays of `element` samples.
pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
    UniformArray { element }
}
