//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub struct AnyStrategy<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        rng.gen_range(0x20u32..0x7f) as u8 as char
    }
}
