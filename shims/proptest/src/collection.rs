//! Collection strategies: `vec(element, size)`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive size window accepted by [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing vectors of `element` samples.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vectors whose length falls in `size`, elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max + 1);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
