//! Serialization into the [`Value`] data model.

use crate::value::{Number, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Renders a serialized key for use in a JSON object (JSON object keys
/// must be strings; numeric and boolean keys are stringified the way
/// serde_json does).
pub fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
