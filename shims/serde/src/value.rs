//! The JSON-like data model shared by `Serialize` and `Deserialize`.

use std::fmt;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Number {
    /// The number as f64 (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as u64 when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The number as i64 when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) if u <= i64::MAX as u64 => Some(u as i64),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(u) => write!(f, "{u}"),
            Number::I(i) => write!(f, "{i}"),
            Number::F(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no inf/NaN; emit null-adjacent sentinel.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An owned, order-preserving JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object (None for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as u64 when it is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as i64 when it is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as f64 when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as bool when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice when it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
