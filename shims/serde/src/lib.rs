//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-copy serialization framework; vendored
//! registries are not available in this build environment, so this crate
//! provides the small surface the workspace actually uses: a JSON-like
//! [`Value`] data model, [`Serialize`]/[`Deserialize`] traits that
//! convert to and from it, and derive macros (re-exported from
//! `serde_derive`) covering the attribute subset used in-tree:
//! `transparent`, `rename_all = "snake_case"`, `default`,
//! `default = "path"`, and `skip_serializing_if = "path"`.

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};
