//! Deserialization out of the [`Value`] data model.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses the data model into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-support: the entries of an object, or an error naming `what`.
pub fn as_object<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(Error::msg(format!(
            "expected object for {what}, found {}",
            other.kind()
        ))),
    }
}

/// Derive-support: looks up a field in object entries.
pub fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Derive-support: a required field.
pub fn field<T: Deserialize>(entries: &[(String, Value)], key: &str) -> Result<T, Error> {
    match get(entries, key) {
        Some(v) => T::from_value(v).map_err(|e| Error::msg(format!("field `{key}`: {e}"))),
        None => Err(Error::msg(format!("missing field `{key}`"))),
    }
}

/// Derive-support: map keys. Tries the string form first, then numeric
/// forms, mirroring how serde_json stringifies non-string keys.
pub fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(key.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Number(crate::value::Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Number(crate::value::Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(b) = key.parse::<bool>() {
        if let Ok(k) = K::from_value(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("unparseable map key `{key}`")))
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, found {}", v.kind())))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned, found {}", v.kind())))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, found {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, found {}", v.kind())))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg(format!("expected char, found {}", v.kind())))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, found {}", v.kind())))
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // The value-tree owns its strings, so a borrowed result must
        // outlive it: intern by leaking. Only small, catalog-like
        // fixtures deserialize into `&'static str` in this workspace.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

fn elements(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Array(a) => Ok(a),
        other => Err(Error::msg(format!(
            "expected array, found {}",
            other.kind()
        ))),
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        elements(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        elements(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}")))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(Error::msg(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(Error::msg(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        elements(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        elements(v)?.iter().map(T::from_value).collect()
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::msg(format!("expected null, found {}", other.kind()))),
        }
    }
}

macro_rules! de_tuple {
    ($(($($n:tt $t:ident),+; $len:expr))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = elements(v)?;
                if items.len() != $len {
                    return Err(Error::msg(format!(
                        "expected array of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (0 A; 1)
    (0 A, 1 B; 2)
    (0 A, 1 B, 2 C; 3)
    (0 A, 1 B, 2 C, 3 D; 4)
    (0 A, 1 B, 2 C, 3 D, 4 E; 5)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F; 6)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
