//! Offline stand-in for the `bytes` crate: an immutable, cheaply
//! clonable byte buffer backed by `Arc<[u8]>` (static slices are kept
//! borrow-only, so `from_static` allocates nothing).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

/// An immutable byte buffer; `clone` is O(1).
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    /// An empty buffer.
    #[inline]
    pub fn new() -> Self {
        Self::from_static(&[])
    }

    /// Wraps a static slice without copying.
    #[inline]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            repr: Repr::Static(bytes),
        }
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    /// The buffer as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            repr: Repr::Shared(Arc::from(v.into_boxed_slice())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_copied_compare_equal() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[1..3], b"el");
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
