//! Offline stand-in for the `rand` crate.
//!
//! Provides seeded, deterministic pseudo-random generation with the API
//! surface this workspace uses: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, and `Rng::{gen_range, gen_bool, gen}`. The generator
//! is xoshiro256** seeded through SplitMix64 — statistically solid for
//! simulation workloads, not cryptographic, exactly like the real
//! `StdRng` contract ("deterministic but unspecified stream").

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (the form used in-tree).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Values uniformly sampleable over a range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[low, high)`; panics when the range is empty.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;

    /// Uniform sample in `[low, high]`; panics when `low > high`.
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection-free multiply-shift mapping; bias is
                // negligible for simulation spans (< 2^64).
                let x = rng.next_u64() as u128;
                let offset = (x * span) >> 64;
                (low as i128 + offset as i128) as $t
            }

            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                // span ≤ 2^64 always fits a u128, so the closed upper
                // bound needs no special casing.
                let span = (high as i128 - low as i128 + 1) as u128;
                let x = rng.next_u64() as u128;
                let offset = (x * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }

    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// A uniform random value.
    fn random(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn random(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn random(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn random(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniform random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::random(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<T: RngCore + Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }
}
