//! Quickstart: define a tiny application with per-module aspects, submit
//! it to the User-Defined Cloud, run it, and read the bill.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use udc::core::{CloudConfig, UdcCloud};
use udc::spec::prelude::*;

fn main() {
    // 1. The development team writes the application as a DAG of
    //    modules (§3.1): one task that crunches data from one store.
    let mut app = AppSpec::new("quickstart");
    app.add_task(
        TaskSpec::new("crunch")
            .describe("number crunching")
            // Resource aspect (§3.2): exactly 4 CPU cores, 8 GiB DRAM.
            .with_resource(
                ResourceAspect::default()
                    .with_demand(ResourceKind::Cpu, 4)
                    .with_demand(ResourceKind::Dram, 8 * 1024),
            )
            // Exec-env aspect (§3.3): strong isolation, enclave on CPUs.
            .with_exec_env(ExecEnvAspect::isolation(IsolationLevel::Strong).with_tee_if_cpu())
            .with_work(500),
    );
    app.add_data(
        DataSpec::new("input")
            .describe("input data set")
            // Distributed aspect (§3.4): 2 replicas, sequential reads.
            .with_dist(
                DistributedAspect::default()
                    .replication(2)
                    .consistency(ConsistencyLevel::Sequential),
            )
            // Protect the data when it leaves its environment.
            .with_exec_env(
                ExecEnvAspect::default().with_protection(DataProtection::ENCRYPT_AND_INTEGRITY),
            )
            .with_bytes(64 << 20),
    );
    app.add_edge("crunch", "input", EdgeKind::Access).unwrap();
    app.affinity("crunch", "input").unwrap();

    // 2. Submit: the provider compiles, places and starts environments.
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let mut deployment = cloud
        .submit(&app)
        .expect("the default datacenter fits this app");
    println!("placed {} modules:", deployment.placement.modules.len());
    for (id, p) in &deployment.placement.modules {
        println!(
            "  {id}: {} x{} in a {} ({} replicas)",
            p.placed_kind,
            p.allocations[0].total_units(),
            p.env.kind,
            p.replica_devices.len(),
        );
    }

    // 3. Run and inspect the outcome.
    let report = cloud.run(&deployment);
    println!(
        "\nend-to-end: {:.1} ms; sealed {} protected transfer(s) ({} MiB)",
        report.makespan_us as f64 / 1e3,
        report.sealed_messages,
        report.sealed_bytes >> 20
    );
    println!("bill: ${:.6}", report.cost.total as f64 / 1e6);

    // 4. Verify the provider fulfilled the definitions (§4).
    let verification = cloud.verify_deployment(&deployment);
    println!(
        "verification: {} verified, {} must trust the provider, {} failed",
        verification.verified(),
        verification.not_verifiable(),
        verification.failed()
    );

    cloud.teardown(&mut deployment);
}
