//! Migrating a legacy monolith to UDC (§4): the profiler + static
//! analysis produce a block graph, the developer adds one hint, the
//! partitioner cuts it into modules, and the emitted app deploys on the
//! cloud with per-phase resources.
//!
//! ```sh
//! cargo run --example legacy_migration
//! ```

use udc::core::{CloudConfig, UdcCloud};
use udc::legacy::{
    etl_ml_monolith_program, partition, to_app_spec, BlockId, Hint, PartitionConfig,
};

fn main() {
    // 1. What the tooling produced: 12 profiled blocks with phases and
    //    dataflow weights.
    let program = etl_ml_monolith_program();
    println!("profiled monolith ({} blocks):", program.len());
    for b in &program.blocks {
        println!(
            "  [{:>2}] {:<14} {:<12} work={:<5} ws={} MiB",
            b.id.0,
            b.label,
            format!("{:?}", b.phase),
            b.work,
            b.working_set_mib
        );
    }

    // 2. The developer-in-the-loop hint: featurize belongs with the GPU
    //    embedding stage (they share the feature tensors).
    let hints = [Hint::KeepWithPrevious(BlockId(6))];
    let part = partition(&program, &hints, PartitionConfig::default());
    println!(
        "\npartitioned into {} modules; {} MiB of flows still cross boundaries:",
        part.segments,
        part.cut_bytes >> 20
    );
    for (i, (s, e)) in part.ranges().iter().enumerate() {
        let labels: Vec<&str> = program.blocks[*s..=*e]
            .iter()
            .map(|b| b.label.as_str())
            .collect();
        println!("  module {i}: {}", labels.join(" + "));
    }

    // 3. Emit the UDC app (aspects inferred from profiles) and deploy.
    let app = to_app_spec(&program, &part, "etl-ml", 2 << 30).expect("valid app");
    println!("\nemitted .udc spec:\n");
    let text = udc::spec::print_app(&app);
    for line in text.lines().take(22) {
        println!("  {line}");
    }
    println!("  ... (elided)");

    let mut cloud = UdcCloud::new(CloudConfig::default());
    let mut dep = cloud.submit(&app).expect("fits the default datacenter");
    let report = cloud.run(&dep);
    println!(
        "\ndeployed and ran: makespan {:.1} s, cost ${:.4} — each phase paid \
         only for its own hardware (the monolith would hold the GPU and the \
         16 GiB working set for the whole run; see exp_16_legacy).",
        report.makespan_us as f64 / 1e6,
        report.cost.total as f64 / 1e6
    );
    cloud.teardown(&mut dep);
}
