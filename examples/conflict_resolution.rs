//! Aspect conflicts and the two resolution policies of §3.4: two tasks
//! share a data module but demand different consistency levels — "UDC
//! needs to detect such conflicts and either chooses the strictest
//! specification or returns an error to the user."
//!
//! ```sh
//! cargo run --example conflict_resolution
//! ```

use udc::spec::conflict::{detect_conflicts, resolve, ConflictPolicy};
use udc::spec::parse_app;

const SPEC: &str = r#"
app shared-ledger {
  task writer "posts transactions" { resource { demand = 2cpu } }
  task auditor "reads the ledger"  { resource { goal = cheapest } }
  data ledger "the shared ledger" {
    dist { replication = 3 }
    bytes = 1048576
  }
  # The writer insists on sequential consistency; the auditor asked for
  # release consistency - the paper's exact example of a conflict.
  access writer -> ledger [consistency = sequential]
  access auditor -> ledger [consistency = release]
}
"#;

fn main() {
    let app = parse_app(SPEC).expect("spec parses");
    app.validate().expect("structurally valid");

    let report = detect_conflicts(&app);
    println!("detected {} conflict(s):", report.len());
    for c in &report.conflicts {
        println!("  - {c}");
    }

    // Policy 1: strictest wins — the ledger is upgraded to sequential.
    let resolved = resolve(&app, ConflictPolicy::StrictestWins).expect("strictest-wins succeeds");
    let ledger = resolved.module(&"ledger".into()).expect("exists");
    println!(
        "\nstrictest-wins: ledger consistency = {:?} (was unspecified)",
        ledger.dist.consistency.expect("now pinned").name()
    );

    // Policy 2: error — the app is refused with an explanation.
    match resolve(&app, ConflictPolicy::Error) {
        Err(e) => println!("error policy: refused -> {e}"),
        Ok(_) => unreachable!("the conflict must be reported"),
    }
}
