//! User-defined control-plane behaviour: a tenant ships its own
//! placement policy as sandboxed bytecode, and the provider runs it
//! inside the scheduler — the mechanism that makes the cloud
//! *user-defined* rather than provider-dictated.
//!
//! Also demonstrates that a hostile policy (infinite loop) is contained
//! by gas metering and cannot damage the control plane.
//!
//! ```sh
//! cargo run --example tenant_policy
//! ```

use udc::extvm::{assemble, VmLimits};
use udc::hal::Datacenter;
use udc::sched::{ExtVmPolicy, SchedOptions, Scheduler};
use udc::workload::ml_serving_chain;

fn main() {
    let app = ml_serving_chain(1);

    // The provider's default policy packs tightly (best-fit). This
    // tenant wants the opposite for noisy-neighbour reasons: spread onto
    // the emptiest devices (worst-fit). Four instructions of policy
    // bytecode, assembled from the textual form:
    let worst_fit = assemble(
        "
            ; score = free_units - demand  (prefer the emptiest device)
            arg 0          ; free units on the candidate
            arg 4          ; our demand
            sub
            ret
        ",
    )
    .expect("policy assembles");

    let mut dc = Datacenter::default();
    let mut sched = Scheduler::new(SchedOptions {
        policy: Box::new(ExtVmPolicy::new(
            "worst-fit",
            worst_fit,
            VmLimits::default(),
        )),
        ..Default::default()
    });
    let placement = sched.place_app(&mut dc, &app).expect("placement succeeds");
    println!(
        "tenant policy `{}` placed {} modules:",
        sched.policy_name(),
        placement.modules.len()
    );
    for (id, p) in &placement.modules {
        println!("  {id:<12} -> device {}", p.primary_device);
    }

    // A hostile tenant ships an infinite loop. Gas metering traps every
    // invocation; the scheduler falls back to its own allocator and the
    // control plane keeps serving everyone.
    let hostile = assemble("spin: jmp spin").expect("assembles");
    let mut dc2 = Datacenter::default();
    let mut sched2 = Scheduler::new(SchedOptions {
        policy: Box::new(ExtVmPolicy::new(
            "hostile-loop",
            hostile,
            VmLimits {
                max_gas: 10_000,
                ..Default::default()
            },
        )),
        ..Default::default()
    });
    match sched2.place_app(&mut dc2, &app) {
        Ok(p) => println!(
            "\nhostile policy contained: every invocation trapped on gas, \
             placement fell back to the allocator default ({} modules placed)",
            p.modules.len()
        ),
        Err(e) => println!("\nhostile policy contained: placement refused cleanly ({e})"),
    }
}
