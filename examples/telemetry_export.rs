//! The telemetry & verification loop (DESIGN.md §8): run the medical
//! pipeline with observability on, audit the bill against the
//! advertised contract, and export the full flight recording.
//!
//! ```sh
//! cargo run --example telemetry_export
//! ```

use udc::core::{CloudConfig, UdcCloud};
use udc::telemetry::Labels;
use udc::workload::medical_pipeline;

fn main() {
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let tel = cloud.enable_telemetry();

    let dep = cloud.submit(&medical_pipeline()).expect("pipeline fits");
    cloud.run(&dep);

    // Per-module usage metering, straight from the registry.
    println!("module      window(ms)   unit-ms     billed(u$)");
    for id in dep.placement.modules.keys() {
        let labels = Labels::module("tenant", id.as_str());
        println!(
            "  {id:<8} {:>10.1} {:>9.1} {:>12}",
            tel.counter("core.module_window_us", &labels) as f64 / 1e3,
            tel.counter("core.module_unit_us", &labels) as f64 / 1e3,
            tel.counter("core.billed_microdollars", &labels),
        );
    }

    // Cold starts: the warm pool is off, so every module started cold.
    let cold = tel
        .histogram("isolate.cold_start_us", &Labels::none())
        .expect("cold starts were recorded");
    println!(
        "\ncold starts: n={} p50={:.1}ms p99={:.1}ms max={:.1}ms",
        cold.count,
        cold.p50 as f64 / 1e3,
        cold.p99 as f64 / 1e3,
        cold.max as f64 / 1e3
    );

    // §4's billing audit: recompute the expected charge from the
    // advertised prices and the observed windows, compare to the bill.
    let verification = cloud.verify_deployment(&dep);
    let billing = verification.billing.as_ref().expect("telemetry is on");
    println!(
        "\nbilling reconciliation (tolerance {:.0}%):",
        billing.tolerance * 100.0
    );
    for (id, check) in &billing.modules {
        println!(
            "  {id:<8} billed={:>6}u$ expected={:>6}u$ {}",
            check.billed,
            check.expected,
            if check.within_tolerance {
                "ok"
            } else {
                "FLAGGED"
            }
        );
    }
    assert!(billing.consistent(), "honest provider must reconcile");

    // The whole recording — counters, histograms, span tree, events —
    // as one JSON artifact.
    let path = std::env::temp_dir().join("udc_telemetry_example.json");
    let written = cloud.export_telemetry(&path).expect("export writes");
    let snap = tel.snapshot();
    println!(
        "\nexported {} spans and {} flight events to {}",
        snap.spans.len(),
        snap.events.len(),
        written.display()
    );
}
