//! The paper's motivating example end to end: the hospital's medical
//! information-processing pipeline (Fig. 2) with the Table 1 user
//! definitions — written in the `.udc` declarative text format, parsed,
//! conflict-checked, deployed, executed and verified.
//!
//! ```sh
//! cargo run --example medical_pipeline
//! ```

use udc::core::{CloudConfig, ModuleVerification, UdcCloud};
use udc::isolate::WarmPoolConfig;
use udc::spec::conflict::detect_conflicts;
use udc::spec::{parse_app, print_app};
use udc::workload::medical_pipeline;

fn main() {
    // The IT team's declarative definition, as a `.udc` document. (We
    // print the canonical form of the built-in pipeline — this is
    // exactly the artifact a hospital's IT team would check into git.)
    let spec_text = print_app(&medical_pipeline());
    println!("--- medical.udc ({} lines) ---", spec_text.lines().count());
    for line in spec_text.lines().take(18) {
        println!("{line}");
    }
    println!("  ... (elided)\n");

    // Parse and validate like the control plane would.
    let app = parse_app(&spec_text).expect("canonical text round-trips");
    app.validate().expect("the pipeline is well-formed");
    let conflicts = detect_conflicts(&app);
    println!(
        "validation: ok; aspect conflicts: {}",
        if conflicts.is_clean() {
            "none".to_string()
        } else {
            format!("{}", conflicts.len())
        }
    );

    // Deploy on a warm-pooled UDC.
    let mut cloud = UdcCloud::new(CloudConfig {
        warm_pool: WarmPoolConfig::uniform(2),
        ..Default::default()
    });
    let mut deployment = cloud.submit(&app).expect("fits the default datacenter");

    println!("\nplacement (user definition -> provider realization):");
    for (id, p) in &deployment.placement.modules {
        println!(
            "  {id:<3} -> {:>4} x{:<8} env={:<18} tenancy={:<7} replicas={}",
            p.placed_kind.to_string(),
            p.allocations[0].total_units(),
            p.env.kind.to_string(),
            if p.env.single_tenant {
                "single"
            } else {
                "shared"
            },
            p.replica_devices.len(),
        );
    }

    // Execute the image-diagnosis + analytics flows.
    let report = cloud.run(&deployment);
    println!("\nrun:");
    for (id, (start, end)) in &report.timings {
        println!(
            "  {id:<3} [{:>10.1} ms .. {:>10.1} ms]",
            *start as f64 / 1e3,
            *end as f64 / 1e3
        );
    }
    println!(
        "  makespan {:.1} ms; {} protected accesses sealed ({} MiB under \
         encryption/integrity); cost ${:.4}",
        report.makespan_us as f64 / 1e3,
        report.sealed_messages,
        report.sealed_bytes >> 20,
        report.cost.total as f64 / 1e6
    );

    // The hospital verifies fulfillment without trusting the provider.
    let verification = cloud.verify_deployment(&deployment);
    println!("\nattestation (hardware root of trust only):");
    for (id, v) in &verification.modules {
        let text = match v {
            ModuleVerification::Verified => "verified".to_string(),
            ModuleVerification::NotVerifiable => {
                "not verifiable (weak/medium isolation: trust the provider)".to_string()
            }
            ModuleVerification::Failed(m) => format!("FAILED: {m}"),
        };
        println!("  {id:<3} {text}");
    }
    assert!(
        verification.all_fulfilled(),
        "provider must fulfill all definitions"
    );

    cloud.teardown(&mut deployment);
    println!("\nteardown complete; all resources returned to the pools.");
}
