//! Integration tests for the experiment claims: the relationships the
//! paper asserts (waste, consolidation, FaaS gaps, matrix costs) hold in
//! this implementation, so the experiment binaries report real effects
//! rather than artifacts.

use udc::baseline::{Catalog, DevOpsMatrix, FaasRuntime, IaasProvisioner};
use udc::sched::{PackAlgo, ServerCluster, ServerShape};
use udc::spec::{ResourceKind, ResourceVector};
use udc::workload::{DemandClass, DemandSampler};

#[test]
fn catalog_waste_is_in_the_papers_band() {
    // §1 cites 35% waste; our synthetic population must land in a
    // credible 25-55% band (shape, not exact number).
    let mut sampler = DemandSampler::new(7);
    let demands = sampler.sample_n(2_000);
    let out = IaasProvisioner::new().provision(&demands);
    assert!(
        out.mean_waste > 0.25 && out.mean_waste < 0.55,
        "waste {} outside the plausible band",
        out.mean_waste
    );
    assert_eq!(out.unplaceable, 0, "the mixture fits the catalog");
}

#[test]
fn papers_gpu_example_forces_oversized_instance() {
    let catalog = Catalog::aws_2021();
    let mut d = ResourceVector::new();
    d.set(ResourceKind::Gpu, 8);
    d.set(ResourceKind::Cpu, 4);
    d.set(ResourceKind::Dram, 64 * 1024);
    let t = catalog.cheapest_fitting(&d).expect("a p3 fits");
    assert!(
        t.name == "p3.16xlarge" || t.name == "p3dn.24xlarge",
        "§1 names exactly these shapes, got {}",
        t.name
    );
    assert!(t.vcpus >= 64, "forced to 64+ vCPUs for a 4-vCPU need");
}

#[test]
fn faas_cannot_serve_gpu_but_udc_can() {
    let faas = FaasRuntime::default();
    let mut gpu_demand = ResourceVector::new();
    gpu_demand.set(ResourceKind::Gpu, 1);
    gpu_demand.set(ResourceKind::Dram, 2048);
    let out = faas.run(&gpu_demand, 5_000).expect("runs, degraded");
    assert!(out.degraded, "FaaS has no GPUs (§1)");

    // UDC serves the same module on a real GPU.
    use udc::hal::Datacenter;
    use udc::sched::{SchedOptions, Scheduler};
    use udc::spec::prelude::*;
    let mut app = AppSpec::new("g");
    app.add_task(
        TaskSpec::new("infer")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Gpu, 1))
            .with_work(5_000),
    );
    let mut dc = Datacenter::default();
    let mut sched = Scheduler::new(SchedOptions::default());
    let placement = sched.place_app(&mut dc, &app).expect("GPU pool exists");
    let p = &placement.modules[&"infer".into()];
    assert_eq!(p.placed_kind, ResourceKind::Gpu);
    // The GPU run is far faster than the degraded FaaS run.
    assert!(p.est_exec_us.unwrap() * 10 < out.exec_us);
}

#[test]
fn pools_beat_servers_on_skewed_mixes() {
    // The E4 effect must be reproducible: memory-heavy demands strand
    // server CPU.
    let mut sampler = DemandSampler::new(3);
    let demands: Vec<ResourceVector> = (0..500)
        .map(|_| sampler.sample_of(DemandClass::MemoryHeavy))
        .collect();
    let mut cluster = ServerCluster::new(ServerShape::standard(0));
    let outcome = cluster.pack_all(&demands, PackAlgo::BestFit);
    assert_eq!(outcome.unplaceable, 0);
    // CPU utilization of the bought servers is poor.
    let cpu = outcome
        .utilization
        .iter()
        .find(|(k, _, _)| *k == ResourceKind::Cpu)
        .expect("cpu provisioned");
    let cpu_util = cpu.1 as f64 / cpu.2 as f64;
    assert!(
        cpu_util < 0.5,
        "memory-heavy packing strands CPU: {cpu_util}"
    );
}

#[test]
fn matrix_costs_diverge_superlinearly() {
    let m = DevOpsMatrix::new(200, 40);
    assert_eq!(m.coupled_feature_cost(), 200);
    assert_eq!(m.decoupled_feature_cost(), 1);
    let report = udc::baseline::simulate_rollout_report(m, 5, 24, 10, 400.0);
    let (_, c_last, d_last) = *report.by_year.last().unwrap();
    assert!(
        c_last > 50 * d_last,
        "after 5 years the coupled cost must dwarf the decoupled one: {c_last} vs {d_last}"
    );
    assert!(report.decoupled_ttm_weeks < report.coupled_ttm_weeks);
}

#[test]
fn exact_fit_cheaper_than_catalog_for_odd_shapes() {
    // A 3-vCPU/6-GiB module: the catalog rounds up to m5.xlarge
    // (4 vCPU/16 GiB); UDC bills 3 vCPU + 6 GiB exactly.
    let catalog = Catalog::aws_2021();
    let demand = ResourceVector::new()
        .with(ResourceKind::Cpu, 3)
        .with(ResourceKind::Dram, 6 * 1024);
    let instance = catalog.cheapest_fitting(&demand).unwrap();
    let udc_hourly: f64 = demand
        .iter()
        .map(|(k, v)| {
            udc::hal::PerfProfile::default_for(k).micro_dollars_per_unit_hour as f64 * v as f64
        })
        .sum();
    assert!(
        udc_hourly < instance.hourly_micro_dollars as f64,
        "exact fit {udc_hourly} must undercut {} ({})",
        instance.hourly_micro_dollars,
        instance.name
    );
}
