//! Cross-crate failure-injection tests: device crashes, replica
//! durability, checkpoint/replay recovery, and failure-domain semantics
//! (§3.4).

use bytes::Bytes;
use udc::actor::{Actor, ActorError, ActorId, Ctx, Message, SupervisionPolicy, System};
use udc::dist::{
    recover, CheckpointStore, DomainTracker, RecoveryStrategy, ReplicatedStore, ReplicationParams,
};
use udc::hal::{Datacenter, FailureEvent, FailurePlan};
use udc::spec::ConsistencyLevel;

#[derive(Default)]
struct Counter {
    n: u64,
}

impl Actor for Counter {
    fn on_message(&mut self, _ctx: &mut Ctx, _msg: &Message) -> Result<(), ActorError> {
        self.n += 1;
        Ok(())
    }
    fn reset(&mut self) {
        self.n = 0;
    }
    fn snapshot(&self) -> Vec<u8> {
        self.n.to_le_bytes().to_vec()
    }
    fn restore(&mut self, s: &[u8]) {
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        self.n = u64::from_le_bytes(b);
    }
}

#[test]
fn device_crash_and_repair_cycle() {
    let mut dc = Datacenter::default();
    let victim = dc.device_ids()[0];
    dc.set_failure_plan(FailurePlan::from_events(vec![
        FailureEvent {
            at_us: 1_000,
            device: victim,
            crash: true,
        },
        FailureEvent {
            at_us: 60_000_000,
            device: victim,
            crash: false,
        },
    ]));
    let crashed = dc.tick(10_000);
    assert_eq!(crashed, vec![victim]);
    assert_eq!(dc.telemetry().counter("device_crashes"), 1);
    let crashed_again = dc.tick(120_000_000);
    assert!(crashed_again.is_empty());
    assert_eq!(dc.telemetry().counter("device_repairs"), 1);
}

#[test]
fn replicated_data_survives_replica_loss() {
    let mut store = ReplicatedStore::new(
        3,
        ConsistencyLevel::Linearizable,
        ReplicationParams::default(),
    )
    .expect("3 replicas");
    for i in 0..50u64 {
        store.write(&format!("k{i}"), &i.to_le_bytes());
    }
    assert!(store.survives(2), "2 of 3 replicas may fail");
    store.fail_replica(1).unwrap();
    store.fail_replica(2).unwrap();
    // Every key still readable (primary holds the data).
    for i in 0..50u64 {
        let r = store.read(&format!("k{i}"));
        assert_eq!(r.value.as_deref(), Some(i.to_le_bytes().as_ref()));
    }
    // Rebuild restores full redundancy.
    assert_eq!(store.rebuild_replica(1).unwrap(), 50);
    assert_eq!(store.rebuild_replica(2).unwrap(), 50);
}

#[test]
fn crash_recovery_checkpoint_equals_reexecution() {
    let mut sys = System::new();
    let id = ActorId::new("worker");
    sys.spawn(
        id.clone(),
        Box::<Counter>::default(),
        SupervisionPolicy::Restart,
    );
    for i in 0..500u64 {
        sys.inject(id.clone(), Bytes::copy_from_slice(&i.to_le_bytes()));
    }
    sys.run_until_quiescent(usize::MAX);

    let mut cps = CheckpointStore::new();
    let seq_400 = sys.log().entries()[399].seq;
    cps.save(&id, seq_400, 400u64.to_le_bytes().to_vec());

    let mut via_reexec = Counter::default();
    let r1 = recover(
        &id,
        &mut via_reexec,
        sys.log(),
        &cps,
        RecoveryStrategy::Reexecute,
    );
    let mut via_ckpt = Counter::default();
    let r2 = recover(
        &id,
        &mut via_ckpt,
        sys.log(),
        &cps,
        RecoveryStrategy::FromCheckpoint,
    );

    assert_eq!(via_reexec.n, via_ckpt.n, "strategies must converge");
    assert_eq!(via_reexec.n, 500);
    assert_eq!(r1.replayed, 500);
    assert_eq!(r2.replayed, 100, "only the post-checkpoint suffix");
}

#[test]
fn failure_domains_partition_blast_radius() {
    let mut domains = DomainTracker::new();
    // The medical pipeline's natural domains: diagnosis path vs
    // analytics path vs storage.
    for m in ["A1", "A2", "A3", "A4"] {
        domains.assign(m, "diagnosis");
    }
    for m in ["B1", "B2"] {
        domains.assign(m, "analytics");
    }
    for m in ["S1", "S2", "S3", "S4"] {
        domains.assign(m, "storage");
    }
    let blast = domains.blast_radius("A2");
    assert_eq!(blast.len(), 4);
    assert!(blast.contains("A4"));
    assert!(!blast.contains("B1"), "analytics fails independently");
    assert!(domains.independent("A1", "S1"));
    assert!(!domains.independent("B1", "B2"));
}

#[test]
fn poison_message_does_not_wedge_the_system() {
    struct Fragile;
    impl Actor for Fragile {
        fn on_message(&mut self, _ctx: &mut Ctx, msg: &Message) -> Result<(), ActorError> {
            if msg.payload.as_ref() == b"poison" {
                Err(ActorError("boom".into()))
            } else {
                Ok(())
            }
        }
    }
    let mut sys = System::new();
    sys.spawn("f", Box::new(Fragile), SupervisionPolicy::RestartAndRetry);
    sys.inject("f", Bytes::from_static(b"ok"));
    sys.inject("f", Bytes::from_static(b"poison"));
    sys.inject("f", Bytes::from_static(b"ok"));
    let (_, quiescent) = sys.run_until_quiescent(1_000);
    assert!(quiescent, "poison must be dropped, not retried forever");
    assert_eq!(sys.stats().delivered, 2);
    assert_eq!(sys.stats().failures, 2, "original + one retry");
}

#[test]
fn random_failure_plan_applies_fully() {
    let mut dc = Datacenter::default();
    let ids = dc.device_ids();
    let plan = FailurePlan::random(&ids, 0.25, 1_000_000, 500_000, 42);
    let expected_events = plan.len();
    dc.set_failure_plan(plan);
    let mut crashes = 0;
    for _ in 0..40 {
        crashes += dc.tick(50_000).len();
    }
    assert_eq!(dc.telemetry().counter("device_crashes"), crashes as u64);
    assert_eq!(
        dc.telemetry().counter("device_crashes") + dc.telemetry().counter("device_repairs"),
        expected_events as u64,
        "every scheduled event fires exactly once"
    );
}
