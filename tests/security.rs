//! Cross-crate security tests: data protection on the wire, attestation
//! against a cheating provider, and conflict policies at the cloud
//! boundary.

use std::collections::BTreeMap;
use udc::core::{check_quote, policy_for_module, CloudConfig, ModuleVerification, UdcCloud};
use udc::crypto::aead::{open, seal, Key, Nonce};
use udc::crypto::attest::{RootOfTrust, Verifier};
use udc::crypto::{derive_key, MerkleTree, ReplayGuard};
use udc::spec::prelude::*;

#[test]
fn protected_pipeline_data_actually_encrypted() {
    // Build the exact flow UDC runs: a data module's bytes sealed for an
    // accessor, transported, opened — and tamper-evident in between.
    let tenant_secret = b"hospital-master-key";
    let key = Key::derive(tenant_secret, b"S1");
    let record = b"patient 4711: prior diagnosis ...";
    let boxed = seal(&key, Nonce::from_sequence(1), b"to:A3", record);
    assert_ne!(
        boxed.ciphertext.as_slice(),
        record.as_slice(),
        "ciphertext differs"
    );

    // In-flight tamper is detected.
    let mut tampered = boxed.clone();
    tampered.ciphertext[5] ^= 1;
    assert!(open(&key, b"to:A3", &tampered).is_err());

    // Wrong destination (AAD) is detected — a record sealed for A3
    // cannot be fed to B2.
    assert!(open(&key, b"to:B2", &boxed).is_err());

    // The legitimate accessor reads it.
    assert_eq!(open(&key, b"to:A3", &boxed).unwrap(), record);
}

#[test]
fn replay_protection_on_module_channels() {
    let mut guard = ReplayGuard::new();
    guard.check(1).unwrap();
    guard.check(2).unwrap();
    assert!(guard.check(2).is_err(), "replayed message rejected");
    assert!(guard.check(1).is_err(), "stale message rejected");
    guard.check(10).unwrap();
}

#[test]
fn integrity_protected_storage_detects_provider_tamper() {
    // S4 (integrity only): Merkle root held by the tenant; the provider
    // stores the chunks.
    let chunks: Vec<Vec<u8>> = (0..64)
        .map(|i| format!("record-{i}").into_bytes())
        .collect();
    let tree = MerkleTree::build(&chunks).unwrap();
    let root = tree.root(); // Tenant-side.

    // Honest fetch verifies.
    let proof = tree.prove(17).unwrap();
    assert!(MerkleTree::verify(&root, &chunks[17], &proof));
    // Provider substitutes a record: caught.
    assert!(!MerkleTree::verify(&root, b"record-FORGED", &proof));
}

#[test]
fn cheating_provider_fails_deployment_verification() {
    // An end-to-end cheat: the quote claims fewer resources than the
    // user defined. Classic attestation passes (software is genuine);
    // the UDC resource claim catches it.
    let device_key = derive_key(b"root", b"device", b"d0");
    let mut rot = RootOfTrust::new("d0", device_key);
    rot.measure("boot: udc-runtime v1");
    rot.measure("load: A1@deadbeef");
    let mut verifier = Verifier::new();
    verifier.trust_device("d0", device_key);
    let nonce = [3u8; 32];
    let mut claims = BTreeMap::new();
    claims.insert("isolation".to_string(), "strongest".to_string());
    claims.insert("tenancy".to_string(), "single_tenant".to_string());
    claims.insert("resources.cpu".to_string(), "2".to_string()); // User asked for 4.
    let quote = rot.quote(nonce, claims);
    let policy = policy_for_module(
        &[
            "boot: udc-runtime v1".to_string(),
            "load: A1@deadbeef".to_string(),
        ],
        "strongest",
        true,
        &[("cpu".to_string(), 4)],
    );
    match check_quote(&verifier, &quote, &nonce, &policy) {
        ModuleVerification::Failed(msg) => assert!(msg.contains("resources.cpu"), "{msg}"),
        other => panic!("cheat must be caught, got {other:?}"),
    }
}

#[test]
fn verification_policy_matrix_matches_isolation_levels() {
    // Strong/strongest are user-verifiable; medium/weak require trust —
    // exactly §3.3's taxonomy, end to end through the cloud.
    let mut app = AppSpec::new("mix");
    for (name, level) in [
        ("weak", IsolationLevel::Weak),
        ("medium", IsolationLevel::Medium),
        ("strong", IsolationLevel::Strong),
        ("strongest", IsolationLevel::Strongest),
    ] {
        app.add_task(
            TaskSpec::new(name)
                .with_resource(ResourceAspect::default().with_demand(ResourceKind::Cpu, 1))
                .with_exec_env(ExecEnvAspect::isolation(level)),
        );
    }
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let dep = cloud.submit(&app).expect("places");
    let report = cloud.verify_deployment(&dep);
    assert_eq!(
        report.modules[&"weak".into()],
        ModuleVerification::NotVerifiable
    );
    assert_eq!(
        report.modules[&"medium".into()],
        ModuleVerification::NotVerifiable
    );
    assert_eq!(
        report.modules[&"strong".into()],
        ModuleVerification::Verified
    );
    assert_eq!(
        report.modules[&"strongest".into()],
        ModuleVerification::Verified
    );
}

#[test]
fn conflicting_app_rejected_under_error_policy_accepted_under_strictest() {
    let mut app = AppSpec::new("conflict");
    app.add_task(TaskSpec::new("W"));
    app.add_task(TaskSpec::new("R"));
    app.add_data(DataSpec::new("D").with_bytes(1024));
    app.add_access_with("W", "D", Some(ConsistencyLevel::Linearizable), None)
        .unwrap();
    app.add_access_with("R", "D", Some(ConsistencyLevel::Eventual), None)
        .unwrap();

    let mut strict_cloud = UdcCloud::new(CloudConfig {
        conflict_policy: ConflictPolicy::Error,
        ..Default::default()
    });
    assert!(strict_cloud.submit(&app).is_err());

    let mut lenient_cloud = UdcCloud::new(CloudConfig::default());
    let dep = lenient_cloud.submit(&app).expect("strictest-wins resolves");
    let d = dep.ir.app.module(&"D".into()).unwrap();
    assert_eq!(
        d.dist.consistency,
        Some(ConsistencyLevel::Linearizable),
        "the data module was upgraded to the strictest requirement"
    );
}
