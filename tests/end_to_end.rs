//! End-to-end integration tests spanning every crate: the full
//! submit → place → run → verify → teardown lifecycle on the paper's
//! workloads.

use udc::core::{CloudConfig, ModuleVerification, UdcCloud};
use udc::isolate::WarmPoolConfig;
use udc::spec::prelude::*;
use udc::spec::ModuleId;
use udc::workload::{analytics_fanout, medical_pipeline, microservice_chain, ml_serving_chain};

fn pool_usage(cloud: &UdcCloud) -> u64 {
    ResourceKind::ALL
        .iter()
        .filter_map(|k| cloud.datacenter().pool(*k).map(|p| p.total_used()))
        .sum()
}

#[test]
fn medical_pipeline_full_lifecycle() {
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let before = pool_usage(&cloud);
    let mut dep = cloud.submit(&medical_pipeline()).expect("pipeline places");

    // Placement realizes Table 1.
    let s1 = &dep.placement.modules[&ModuleId::from("S1")];
    assert_eq!(s1.replica_devices.len(), 3, "S1: replicate 3x");
    assert_eq!(s1.placed_kind, ResourceKind::Ssd, "S1: SSD");
    let a2 = &dep.placement.modules[&ModuleId::from("A2")];
    assert_eq!(a2.placed_kind, ResourceKind::Gpu, "A2: GPU");
    assert!(a2.env.single_tenant, "A2: single-tenant");
    let a4 = &dep.placement.modules[&ModuleId::from("A4")];
    assert_eq!(a4.replica_devices.len(), 2, "A4: rep 2x");
    assert!(a4.env.kind.is_tee(), "A4: SGX enclave");
    let b2 = &dep.placement.modules[&ModuleId::from("B2")];
    assert!(!b2.env.single_tenant, "B2: plain containers");

    // Execution respects the DAG and applies protection.
    let report = cloud.run(&dep);
    assert!(report.makespan_us > 0);
    let (a1s, a1e) = report.timings[&ModuleId::from("A1")];
    let (a2s, _) = report.timings[&ModuleId::from("A2")];
    let (_, a4e) = report.timings[&ModuleId::from("A4")];
    assert!(a2s >= a1e, "A2 waits for A1");
    assert!(a4e >= a2s, "A4 after A2 started");
    assert_eq!(a1s, 0);
    assert!(
        report.sealed_messages >= 5,
        "S1/S2/S3 accesses are protected"
    );
    assert!(report.cost.total > 0);

    // The user can verify fulfillment.
    let verification = cloud.verify_deployment(&dep);
    assert!(verification.all_fulfilled());
    assert_eq!(
        verification.modules[&ModuleId::from("A4")],
        ModuleVerification::Verified,
        "strongest isolation is attestable"
    );
    assert_eq!(
        verification.modules[&ModuleId::from("B2")],
        ModuleVerification::NotVerifiable,
        "weak isolation requires trusting the provider"
    );

    // Teardown returns every unit.
    cloud.teardown(&mut dep);
    assert_eq!(pool_usage(&cloud), before, "no leaked capacity");
}

#[test]
fn all_bundled_workloads_deploy_and_run() {
    for (name, app) in [
        ("medical", medical_pipeline()),
        ("ml-serving", ml_serving_chain(2)),
        ("analytics", analytics_fanout(6)),
        ("microservices", microservice_chain(6)),
    ] {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let mut dep = cloud
            .submit(&app)
            .unwrap_or_else(|e| panic!("{name} failed to place: {e}"));
        let report = cloud.run(&dep);
        assert!(report.makespan_us > 0, "{name}: zero makespan");
        assert_eq!(
            report.timings.len(),
            app.len(),
            "{name}: every module must be timed"
        );
        cloud.teardown(&mut dep);
    }
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut cloud = UdcCloud::new(CloudConfig::default());
        let dep = cloud.submit(&medical_pipeline()).expect("places");
        cloud.run(&dep)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical configs must produce identical reports");
}

#[test]
fn warm_pool_cuts_makespan() {
    let mut cold_cloud = UdcCloud::new(CloudConfig::default());
    let cold = {
        let dep = cold_cloud.submit(&medical_pipeline()).expect("places");
        cold_cloud.run(&dep)
    };
    let mut warm_cloud = UdcCloud::new(CloudConfig {
        warm_pool: WarmPoolConfig::uniform(10),
        ..Default::default()
    });
    let warm = {
        let dep = warm_cloud.submit(&medical_pipeline()).expect("places");
        warm_cloud.run(&dep)
    };
    assert_eq!(warm.warm_fraction, 1.0, "pool sized to the app: all warm");
    assert!(
        warm.makespan_us < cold.makespan_us,
        "warm starts must shorten the critical path ({} vs {})",
        warm.makespan_us,
        cold.makespan_us
    );
}

#[test]
fn aspects_fall_back_to_provider_defaults() {
    // "Users could also choose to not define any specifications, in
    // which case the cloud provider makes the decisions instead."
    let mut app = AppSpec::new("lazy");
    app.add_task(TaskSpec::new("T"));
    app.add_data(DataSpec::new("D"));
    app.add_edge("T", "D", EdgeKind::Access).unwrap();
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let mut dep = cloud.submit(&app).expect("defaults place");
    let report = cloud.run(&dep);
    assert_eq!(report.timings.len(), 2);
    assert_eq!(report.sealed_messages, 0, "no protection requested");
    cloud.teardown(&mut dep);
}

#[test]
fn capacity_exhaustion_is_reported_not_panicked() {
    // Demand more GPUs than the default datacenter owns.
    let mut app = AppSpec::new("greedy");
    app.add_task(
        TaskSpec::new("big")
            .with_resource(ResourceAspect::default().with_demand(ResourceKind::Gpu, 10_000)),
    );
    let mut cloud = UdcCloud::new(CloudConfig::default());
    assert!(cloud.submit(&app).is_err());
    // The failed submit must not leak partial allocations.
    assert_eq!(pool_usage(&cloud), 0);
}

#[test]
fn sequential_tenants_share_the_datacenter() {
    let mut cloud = UdcCloud::new(CloudConfig::default());
    let mut deps = Vec::new();
    for _ in 0..4 {
        deps.push(cloud.submit(&ml_serving_chain(1)).expect("fits"));
    }
    for dep in &deps {
        let report = cloud.run(dep);
        assert!(report.makespan_us > 0);
    }
    for dep in &mut deps {
        cloud.teardown(dep);
    }
    assert_eq!(pool_usage(&cloud), 0);
}
