//! Integration tests for the `udc` CLI binary, driven through the real
//! executable (`CARGO_BIN_EXE_udc`).

use std::process::Command;

fn udc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_udc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

const MEDICAL: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/specs/medical.udc");

#[test]
fn check_accepts_the_shipped_spec() {
    let (stdout, stderr, ok) = udc(&["check", MEDICAL]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("10 modules"), "{stdout}");
    assert!(stdout.contains("no conflicts"), "{stdout}");
}

#[test]
fn plan_lists_every_module() {
    let (stdout, _, ok) = udc(&["plan", MEDICAL]);
    assert!(ok);
    for m in ["A1", "A2", "A3", "A4", "B1", "B2", "S1", "S2", "S3", "S4"] {
        assert!(stdout.contains(m), "missing {m} in:\n{stdout}");
    }
    assert!(stdout.contains("tee_enclave"), "{stdout}");
}

#[test]
fn run_reports_and_verifies() {
    let (stdout, _, ok) = udc(&["run", MEDICAL, "--warm-pool=2"]);
    assert!(ok, "verification must pass");
    assert!(stdout.contains("makespan"), "{stdout}");
    assert!(stdout.contains("sealed transfers"), "{stdout}");
    assert!(stdout.contains("verification:"), "{stdout}");
}

#[test]
fn run_json_emits_valid_json() {
    let (stdout, _, ok) = udc(&["run", MEDICAL, "--json"]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert!(v.get("makespan_us").is_some());
    assert!(v.get("timings").is_some());
}

#[test]
fn fmt_round_trips() {
    let (stdout, _, ok) = udc(&["fmt", MEDICAL]);
    assert!(ok);
    // The canonical form must itself parse.
    udc_spec::parse_app(&stdout).expect("canonical output parses");
}

#[test]
fn bad_file_fails_cleanly() {
    let (_, stderr, ok) = udc(&["check", "/nonexistent.udc"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn bad_syntax_reports_line() {
    let dir = std::env::temp_dir().join("udc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.udc");
    std::fs::write(&bad, "app x {\n  teleport T\n}\n").unwrap();
    let (_, stderr, ok) = udc(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn unknown_command_shows_usage() {
    let (_, stderr, ok) = udc(&["frobnicate", MEDICAL]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}
