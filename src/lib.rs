//! # UDC — User-Defined Cloud
//!
//! Facade crate re-exporting the whole UDC stack. See the workspace
//! README for an architecture overview and the `udc-core` crate for the
//! control-plane entry points.

pub use udc_actor as actor;
pub use udc_baseline as baseline;
pub use udc_core as core;
pub use udc_crypto as crypto;
pub use udc_dist as dist;
pub use udc_extvm as extvm;
pub use udc_hal as hal;
pub use udc_isolate as isolate;
pub use udc_legacy as legacy;
pub use udc_sched as sched;
pub use udc_spec as spec;
pub use udc_telemetry as telemetry;
pub use udc_workload as workload;
