//! The `udc` command-line tool: work with `.udc` application specs
//! against a simulated User-Defined Cloud.
//!
//! ```text
//! udc check  <app.udc>   validate + conflict-check a spec
//! udc plan   <app.udc>   show the placement the cloud would produce
//! udc run    <app.udc>   deploy, execute, bill, and verify
//! udc fmt    <app.udc>   print the canonical form of a spec
//! ```
//!
//! Flags: `--conflicts=error|strictest` (default strictest),
//! `--warm-pool=N` (default 0), `--json` (machine-readable run report).

use std::process::ExitCode;
use udc_core::{CloudConfig, UdcCloud};
use udc_isolate::WarmPoolConfig;
use udc_spec::conflict::detect_conflicts;
use udc_spec::{parse_app, print_app, AppSpec, ConflictPolicy};

struct Options {
    conflict_policy: ConflictPolicy,
    warm_pool: usize,
    json: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: udc <check|plan|run|fmt> <app.udc> \
         [--conflicts=error|strictest] [--warm-pool=N] [--json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut path = None;
    let mut options = Options {
        conflict_policy: ConflictPolicy::StrictestWins,
        warm_pool: 0,
        json: false,
    };
    for arg in &args {
        if let Some(v) = arg.strip_prefix("--conflicts=") {
            options.conflict_policy = match v {
                "error" => ConflictPolicy::Error,
                "strictest" => ConflictPolicy::StrictestWins,
                other => {
                    eprintln!("unknown conflict policy `{other}`");
                    return usage();
                }
            };
        } else if let Some(v) = arg.strip_prefix("--warm-pool=") {
            options.warm_pool = match v.parse() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("bad warm-pool size `{v}`");
                    return usage();
                }
            };
        } else if arg == "--json" {
            options.json = true;
        } else if command.is_none() {
            command = Some(arg.clone());
        } else if path.is_none() {
            path = Some(arg.clone());
        } else {
            eprintln!("unexpected argument `{arg}`");
            return usage();
        }
    }
    let (Some(command), Some(path)) = (command, path) else {
        return usage();
    };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("udc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let app = match parse_app(&source) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("udc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "check" => cmd_check(&app, &options),
        "plan" => cmd_plan(&app, &options),
        "run" => cmd_run(&app, &options),
        "fmt" => {
            print!("{}", print_app(&app));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}

fn cmd_check(app: &AppSpec, options: &Options) -> ExitCode {
    if let Err(e) = app.validate() {
        eprintln!("invalid: {e}");
        return ExitCode::FAILURE;
    }
    let report = detect_conflicts(app);
    if report.is_clean() {
        println!(
            "ok: {} modules ({} tasks, {} data), {} edges, {} hints, no conflicts",
            app.len(),
            app.tasks().count(),
            app.data().count(),
            app.edges.len(),
            app.hints.len()
        );
        return ExitCode::SUCCESS;
    }
    println!("{} conflict(s):", report.len());
    for c in &report.conflicts {
        println!("  - {c}");
    }
    match options.conflict_policy {
        ConflictPolicy::StrictestWins => {
            println!("policy strictest-wins: the cloud would upgrade and accept");
            ExitCode::SUCCESS
        }
        ConflictPolicy::Error => {
            println!("policy error: the cloud would reject this app");
            ExitCode::FAILURE
        }
    }
}

fn cloud_for(options: &Options) -> UdcCloud {
    UdcCloud::new(CloudConfig {
        conflict_policy: options.conflict_policy,
        warm_pool: if options.warm_pool > 0 {
            WarmPoolConfig::uniform(options.warm_pool)
        } else {
            WarmPoolConfig::disabled()
        },
        ..Default::default()
    })
}

fn cmd_plan(app: &AppSpec, options: &Options) -> ExitCode {
    let mut cloud = cloud_for(options);
    let mut dep = match cloud.submit(app) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("placement failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<14} {:>6} {:>8} {:<18} {:>8} {:>8}",
        "module", "kind", "units", "environment", "tenancy", "replicas"
    );
    for (id, p) in &dep.placement.modules {
        println!(
            "{:<14} {:>6} {:>8} {:<18} {:>8} {:>8}",
            id.to_string(),
            p.placed_kind.to_string(),
            p.allocations[0].total_units(),
            p.env.kind.to_string(),
            if p.env.single_tenant {
                "single"
            } else {
                "shared"
            },
            p.replica_devices.len(),
        );
    }
    cloud.teardown(&mut dep);
    ExitCode::SUCCESS
}

fn cmd_run(app: &AppSpec, options: &Options) -> ExitCode {
    let mut cloud = cloud_for(options);
    let mut dep = match cloud.submit(app) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("submit failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = cloud.run(&dep);
    let verification = cloud.verify_deployment(&dep);
    if options.json {
        match serde_json::to_string_pretty(&report) {
            Ok(js) => println!("{js}"),
            Err(e) => eprintln!("serialization failed: {e}"),
        }
    } else {
        println!(
            "makespan {:.1} ms; cost ${:.6}; {} sealed transfers ({} MiB protected)",
            report.makespan_us as f64 / 1e3,
            report.cost.total as f64 / 1e6,
            report.sealed_messages,
            report.sealed_bytes >> 20,
        );
        for (id, (start, end)) in &report.timings {
            println!(
                "  {id:<14} [{:>10.1} ms .. {:>10.1} ms]",
                *start as f64 / 1e3,
                *end as f64 / 1e3
            );
        }
        println!(
            "verification: {} verified, {} provider-trusted, {} FAILED",
            verification.verified(),
            verification.not_verifiable(),
            verification.failed()
        );
    }
    cloud.teardown(&mut dep);
    if verification.all_fulfilled() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
